"""Fault-tolerant job runtime for campaigns.

Every unit of campaign work — one Phase-1 exploration, one crosscheck
pair, one hybrid hunt — becomes a :class:`CampaignJob` with a wall-clock
deadline and a retry budget, and runs under a :class:`JobSupervisor`
instead of directly on an executor.  The supervisor guarantees that one
bad cell cannot take the campaign down:

* **Timeouts** — a cell that exceeds ``cell_timeout`` is abandoned at its
  deadline (thread attempts run as daemon threads precisely so they can
  be walked away from; process attempts get their pool torn down) and
  lands as terminal state ``timed_out`` once its retries are spent.
* **Retries** — failed/timed-out attempts are re-queued with exponential
  backoff and jitter (:class:`RetryPolicy`; clock, sleep and RNG are all
  injectable, so tests pin the schedule down deterministically).
* **Crash isolation** — a worker-process death surfaces as
  ``BrokenProcessPool`` on every in-flight future; the supervisor
  rebuilds the pool, re-queues the in-flight jobs (pool breaks don't
  consume a job's retry budget — the victim is usually innocent), and
  after ``max_pool_rebuilds`` rebuilds degrades the remaining work to
  the thread executor, *recording* the degradation instead of hiding it.
* **Structured failures** — every non-``ok`` terminal state becomes a
  :class:`JobFailure` with the attempt count and full traceback, which
  campaigns aggregate onto their report (completed-with-failures is a
  different exit code than crashed).

Side effects stay on the supervisor's caller thread: job callables
*return* values, and the caller's ``on_result`` hook commits them (cache
seeding, checkpoint appends).  An abandoned attempt that eventually
finishes in its zombie thread therefore cannot corrupt campaign state —
its return value is simply dropped.
"""

from __future__ import annotations

import random
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait as futures_wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CampaignError, CellTimeoutError, WorkerCrashError

__all__ = [
    "TERMINAL_STATES",
    "CampaignJob",
    "JobFailure",
    "JobResult",
    "JobSupervisor",
    "RetryPolicy",
]

#: Terminal job states.  ``ok`` carries a value; the rest carry a
#: :class:`JobFailure`.  ``skipped`` is assigned by the *campaign* (a cell
#: whose dependency failed, or one restored from a checkpoint) — the
#: supervisor itself only produces the first four.
TERMINAL_STATES = ("ok", "failed", "timed_out", "crashed", "skipped")


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter for re-queued attempts."""

    #: Extra attempts after the first (0 = fail fast).
    retries: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: Uniform jitter fraction added on top of the deterministic delay.
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before attempt ``attempt + 1`` (attempts are 1-based)."""

        base = min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** max(0, attempt - 1))
        return base * (1.0 + self.jitter * rng.random())

    @property
    def max_attempts(self) -> int:
        return max(1, self.retries + 1)


@dataclass
class CampaignJob:
    """One campaign cell: a deadline-and-retry-bounded unit of work."""

    #: Cell kind: ``"phase1"`` / ``"pair"`` / ``"hunt"``.
    kind: str
    #: Stable cell identity (kind, then the cell coordinates), used for
    #: checkpoint keys and failure records.
    key: Tuple[str, ...]
    #: Runs the cell in a worker thread; returns the cell's value.
    thread_fn: Callable[[], object] = lambda: None
    #: Optional picklable alternative ``(fn, args)`` for process pools.
    process_task: Optional[Tuple[Callable, tuple]] = None
    #: Per-job deadline override (falls back to the supervisor's).
    timeout: Optional[float] = None
    # -- runtime accounting (owned by the supervisor) --
    attempts: int = 0
    pool_breaks: int = 0

    @property
    def cell(self) -> str:
        return "/".join(self.key)


@dataclass
class JobFailure:
    """Structured record of one cell's non-``ok`` terminal state."""

    kind: str
    cell: str
    state: str
    attempts: int
    error_type: str = ""
    message: str = ""
    traceback: str = ""
    wall_time: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "cell": self.cell,
            "state": self.state,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "wall_time": self.wall_time,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobFailure":
        return cls(
            kind=str(data.get("kind", "")),
            cell=str(data.get("cell", "")),
            state=str(data.get("state", "failed")),
            attempts=int(data.get("attempts", 0)),
            error_type=str(data.get("error_type", "")),
            message=str(data.get("message", "")),
            traceback=str(data.get("traceback", "")),
            wall_time=float(data.get("wall_time", 0.0)),
        )

    def describe(self) -> str:
        return "%-6s %-40s %s after %d attempt(s): %s" % (
            self.kind, self.cell, self.state, self.attempts,
            self.message or self.error_type or "(no detail)")


@dataclass
class JobResult:
    """Terminal outcome of one job: a value (``ok``) or a failure."""

    job: CampaignJob
    state: str
    value: object = None
    failure: Optional[JobFailure] = None
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.state == "ok"


class _Attempt:
    """One in-flight thread attempt; daemonized so timeouts can abandon it."""

    __slots__ = ("job", "number", "done", "value", "error", "tb",
                 "started", "abandoned", "wake")

    def __init__(self, job: CampaignJob, number: int, wake: threading.Event) -> None:
        self.job = job
        self.number = number
        self.done = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None
        self.tb: str = ""
        self.started: float = 0.0
        self.abandoned = False
        self.wake = wake

    def run(self) -> None:
        try:
            self.value = self.job.thread_fn()
        # soft-lint: disable=broad-except -- the whole point: any cell crash becomes a structured failure, not a campaign abort
        except Exception as exc:
            self.error = exc
            self.tb = traceback.format_exc()
        finally:
            self.done.set()
            self.wake.set()


def _process_attempt_main(fault_plan, fn, args):
    """Module-level process-pool entry: install the fault plan, run the cell.

    Unpickling the plan already installs it in the worker (see
    ``FaultPlan.__reduce__``); receiving it as an argument is what ships
    it there.
    """

    return fn(*args)


class JobSupervisor:
    """Runs :class:`CampaignJob` lists with timeouts, retries and isolation."""

    def __init__(self,
                 workers: int = 1,
                 executor: str = "thread",
                 cell_timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None,
                 max_pool_rebuilds: int = 2,
                 fault_plan=None) -> None:
        if executor not in ("thread", "process"):
            raise CampaignError("executor must be 'thread' or 'process', got %r"
                                % (executor,))
        self.workers = max(1, int(workers))
        self.executor = executor
        self.cell_timeout = cell_timeout
        self.retry = retry or RetryPolicy()
        self.clock = clock
        self.sleep = sleep
        self.rng = rng or random.Random(0)
        self.max_pool_rebuilds = max(0, int(max_pool_rebuilds))
        self.fault_plan = fault_plan
        #: Executor degradations recorded during runs (never silent).
        self.degradation_events: List[Dict[str, object]] = []
        self.pool_rebuilds = 0
        #: Thread attempts abandoned at their deadline (zombies left behind).
        self.abandoned_attempts = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, jobs: Sequence[CampaignJob],
            on_result: Optional[Callable[[JobResult], None]] = None,
            ) -> List[JobResult]:
        """Run every job to a terminal state; results in input order.

        *on_result* fires on this thread as each job terminalizes — the
        campaign uses it to seed caches and append checkpoint records
        incrementally, so a killed campaign can resume mid-stage.
        """

        jobs = list(jobs)
        results: Dict[int, JobResult] = {}

        def commit(result: JobResult) -> None:
            results[id(result.job)] = result
            if on_result is not None:
                on_result(result)

        process_jobs = [job for job in jobs
                        if job.process_task is not None and self.executor == "process"
                        and self.workers > 1]
        thread_jobs = [job for job in jobs if id(job) not in
                       {id(j) for j in process_jobs}]
        if process_jobs:
            demoted = self._run_process_stage(process_jobs, commit)
            thread_jobs = demoted + thread_jobs
        if thread_jobs:
            self._run_thread_stage(thread_jobs, commit)
        return [results[id(job)] for job in jobs]

    @property
    def degraded(self) -> bool:
        return bool(self.degradation_events)

    def record_degradation(self, reason: str, **detail: object) -> None:
        event: Dict[str, object] = {"reason": reason}
        event.update(detail)
        self.degradation_events.append(event)

    # ------------------------------------------------------------------
    # Shared terminal-state plumbing
    # ------------------------------------------------------------------

    def _effective_timeout(self, job: CampaignJob) -> Optional[float]:
        return job.timeout if job.timeout is not None else self.cell_timeout

    def _terminal_state_for(self, error: BaseException) -> str:
        if isinstance(error, CellTimeoutError):
            return "timed_out"
        if isinstance(error, WorkerCrashError):
            return "crashed"
        return "failed"

    def _failure(self, job: CampaignJob, state: str, error: BaseException,
                 tb: str, started: float) -> JobResult:
        failure = JobFailure(
            kind=job.kind,
            cell=job.cell,
            state=state,
            attempts=job.attempts,
            error_type=type(error).__name__,
            message=str(error),
            traceback=tb,
            wall_time=max(0.0, self.clock() - started),
        )
        return JobResult(job=job, state=state, failure=failure,
                         wall_time=failure.wall_time)

    def _retry_or_terminalize(self, job: CampaignJob, error: BaseException,
                              tb: str, started: float,
                              waiting: List[Tuple[float, CampaignJob]],
                              commit: Callable[[JobResult], None]) -> None:
        if job.attempts < self.retry.max_attempts:
            eligible_at = self.clock() + self.retry.delay(job.attempts, self.rng)
            waiting.append((eligible_at, job))
            return
        commit(self._failure(job, self._terminal_state_for(error), error, tb, started))

    # ------------------------------------------------------------------
    # Thread stage
    # ------------------------------------------------------------------

    def _run_thread_stage(self, jobs: Sequence[CampaignJob],
                          commit: Callable[[JobResult], None]) -> None:
        pending = deque(jobs)
        waiting: List[Tuple[float, CampaignJob]] = []
        running: List[_Attempt] = []
        wake = threading.Event()
        job_started: Dict[int, float] = {id(job): 0.0 for job in jobs}

        while pending or waiting or running:
            now = self.clock()
            for entry in list(waiting):
                if now >= entry[0]:
                    waiting.remove(entry)
                    pending.append(entry[1])

            while pending and len(running) < self.workers:
                job = pending.popleft()
                job.attempts += 1
                if job.attempts == 1:
                    job_started[id(job)] = self.clock()
                attempt = _Attempt(job, job.attempts, wake)
                attempt.started = self.clock()
                thread = threading.Thread(target=attempt.run, daemon=True,
                                          name="soft-job-%s" % job.cell)
                thread.start()
                running.append(attempt)

            wake.clear()
            progressed = False
            for attempt in list(running):
                job = attempt.job
                started = job_started[id(job)]
                if attempt.done.is_set():
                    running.remove(attempt)
                    progressed = True
                    if attempt.error is None:
                        commit(JobResult(job=job, state="ok", value=attempt.value,
                                         wall_time=max(0.0, self.clock() - started)))
                    else:
                        self._retry_or_terminalize(job, attempt.error, attempt.tb,
                                                   started, waiting, commit)
                    continue
                timeout = self._effective_timeout(job)
                if timeout is not None and self.clock() - attempt.started >= timeout:
                    attempt.abandoned = True
                    self.abandoned_attempts += 1
                    running.remove(attempt)
                    progressed = True
                    error = CellTimeoutError(
                        "cell %s exceeded its %.2fs deadline (attempt %d/%d)"
                        % (job.cell, timeout, job.attempts, self.retry.max_attempts))
                    self._retry_or_terminalize(job, error, "", started, waiting, commit)

            if progressed or (pending and len(running) < self.workers):
                continue
            if not running and not pending and waiting:
                next_eligible = min(entry[0] for entry in waiting)
                self.sleep(max(0.0, min(next_eligible - self.clock(), 0.05)))
                continue
            if running:
                tick = 0.25
                deadlines = [self._effective_timeout(a.job) for a in running]
                if any(d is not None for d in deadlines):
                    tick = 0.01
                wake.wait(tick)

    # ------------------------------------------------------------------
    # Process stage
    # ------------------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down hard, terminating workers that may be hung."""

        try:
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
        # soft-lint: disable=broad-except -- best-effort teardown of an already-broken pool
        except Exception:
            pass
        try:
            pool.shutdown(wait=False)
        # soft-lint: disable=broad-except -- best-effort teardown of an already-broken pool
        except Exception:
            pass

    def _run_process_stage(self, jobs: Sequence[CampaignJob],
                           commit: Callable[[JobResult], None],
                           ) -> List[CampaignJob]:
        """Run process-capable jobs; returns jobs demoted to the thread stage."""

        from concurrent.futures.process import BrokenProcessPool

        pending = deque(jobs)
        waiting: List[Tuple[float, CampaignJob]] = []
        job_started: Dict[int, float] = {id(job): 0.0 for job in jobs}
        pool = self._make_pool()
        inflight: Dict[object, Tuple[CampaignJob, float]] = {}

        def drain_inflight() -> List[CampaignJob]:
            victims = [job for job, _ in inflight.values()]
            inflight.clear()
            return victims

        try:
            while pending or waiting or inflight:
                now = self.clock()
                for entry in list(waiting):
                    if now >= entry[0]:
                        waiting.remove(entry)
                        pending.append(entry[1])

                while pending and len(inflight) < self.workers:
                    job = pending.popleft()
                    job.attempts += 1
                    if job_started[id(job)] == 0.0:
                        job_started[id(job)] = self.clock()
                    fn, args = job.process_task  # type: ignore[misc]
                    future = pool.submit(_process_attempt_main, self.fault_plan,
                                         fn, args)
                    inflight[future] = (job, self.clock())

                if not inflight:
                    if waiting and not pending:
                        next_eligible = min(entry[0] for entry in waiting)
                        self.sleep(max(0.0, min(next_eligible - self.clock(), 0.05)))
                    continue

                done, _ = futures_wait(list(inflight), timeout=0.05,
                                       return_when=FIRST_COMPLETED)
                pool_broke = False
                for future in done:
                    job, _submitted = inflight.pop(future)
                    started = job_started[id(job)]
                    try:
                        value = future.result(timeout=0)
                    except BrokenProcessPool:
                        pool_broke = True
                        job.pool_breaks += 1
                        # The pool break is not this job's fault until proven
                        # otherwise: re-queue without consuming its retries.
                        job.attempts -= 1
                        pending.append(job)
                    # soft-lint: disable=broad-except -- worker exceptions of any type become structured failures
                    except Exception as exc:
                        tb = getattr(exc, "__traceback__", None)
                        rendered = "".join(traceback.format_exception(
                            type(exc), exc, tb))
                        self._retry_or_terminalize(job, exc, rendered, started,
                                                   waiting, commit)
                    else:
                        commit(JobResult(job=job, state="ok", value=value,
                                         wall_time=max(0.0, self.clock() - started)))

                if pool_broke:
                    for job in drain_inflight():
                        job.pool_breaks += 1
                        job.attempts -= 1
                        pending.append(job)
                    self._kill_pool(pool)
                    self.pool_rebuilds += 1
                    if self.pool_rebuilds > self.max_pool_rebuilds:
                        self.record_degradation(
                            "process pool broke %d time(s); degrading the "
                            "remaining Phase-1 cells to the thread executor"
                            % self.pool_rebuilds,
                            kind="process-pool-broken",
                            pool_rebuilds=self.pool_rebuilds)
                        leftovers = list(pending) + [entry[1] for entry in waiting]
                        pending.clear()
                        waiting.clear()
                        return leftovers
                    pool = self._make_pool()
                    continue

                # Deadline sweep: a hung worker cannot be reclaimed on its
                # own, so the whole pool is torn down and the survivors
                # re-queued (for free — only the timed-out cell pays).
                timed_out = [
                    (future, job) for future, (job, submitted) in inflight.items()
                    if self._effective_timeout(job) is not None
                    and self.clock() - submitted >= self._effective_timeout(job)]
                if timed_out:
                    expired = {id(job) for _, job in timed_out}
                    survivors = [job for job, _ in inflight.values()
                                 if id(job) not in expired]
                    inflight.clear()
                    self._kill_pool(pool)
                    for _, job in timed_out:
                        timeout = self._effective_timeout(job)
                        error = CellTimeoutError(
                            "cell %s exceeded its %.2fs deadline (attempt %d/%d)"
                            % (job.cell, timeout, job.attempts,
                               self.retry.max_attempts))
                        self._retry_or_terminalize(job, error, "",
                                                   job_started[id(job)],
                                                   waiting, commit)
                    for job in survivors:
                        job.attempts -= 1
                        pending.append(job)
                    pool = self._make_pool()
        finally:
            self._kill_pool(pool)
        return []
