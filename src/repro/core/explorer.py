"""Phase 1: symbolically execute one agent with one test specification.

``explore_agent`` wires together the test harness, the exploration engine and
(optionally) the coverage tracker, and produces an
:class:`AgentExplorationReport` — the per-agent intermediate result that a
vendor would hand to the crosschecking party in the paper's usage model
(§2.4): path conditions plus normalized output traces, but no source code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.agents import make_agent
from repro.agents.common.base import OpenFlowAgent
from repro.core.tests_catalog import TestSpec, get_test
from repro.core.trace import OutputTrace, normalize_events
from repro.coverage.tracker import CoverageReport, CoverageTracker
from repro.harness.driver import TestDriver
from repro.symbex.engine import (
    EngineConfig,
    ExplorationResult,
    PathRecord,
    explore_parallel,
)
from repro.symbex.expr import BoolExpr
from repro.symbex.solver import Solver, SolverConfig
from repro.symbex.strategies import make_strategy
from repro.testing.faults import fault_point

__all__ = ["PathOutcome", "AgentExplorationReport", "explore_agent"]

AgentSpec = Union[str, Callable[[], OpenFlowAgent]]


@dataclass
class PathOutcome:
    """One explored path: its input constraints and its observable result."""

    path_id: int
    constraints: List[BoolExpr]
    trace: OutputTrace
    constraint_size: int
    decisions: int
    symbols: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering of this path (constraints serialized as trees)."""

        from repro.symbex.serialize import expr_to_obj

        return {
            "path_id": self.path_id,
            "constraints": [expr_to_obj(c) for c in self.constraints],
            "trace": self.trace.to_obj(),
            "constraint_size": self.constraint_size,
            "decisions": self.decisions,
            "symbols": dict(self.symbols),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PathOutcome":
        from repro.symbex.serialize import bool_expr_from_obj

        return cls(
            path_id=int(data["path_id"]),
            constraints=[bool_expr_from_obj(c) for c in data.get("constraints", [])],
            trace=OutputTrace.from_obj(data.get("trace", [])),
            constraint_size=int(data.get("constraint_size", 0)),
            decisions=int(data.get("decisions", 0)),
            symbols={str(k): int(v) for k, v in dict(data.get("symbols", {})).items()},
            error=data.get("error"),
        )


@dataclass
class AgentExplorationReport:
    """Everything Phase 2 needs to know about one (agent, test) exploration."""

    agent_name: str
    test_key: str
    outcomes: List[PathOutcome]
    cpu_time: float
    path_count: int
    message_count: int
    solver_stats: Dict[str, float] = field(default_factory=dict)
    engine_stats: Dict[str, float] = field(default_factory=dict)
    coverage: Optional[CoverageReport] = None
    truncated: bool = False
    #: Scale profile of the explored test spec ("small"/"paper", §Table 1).
    scale: str = "small"

    def average_constraint_size(self) -> float:
        sizes = [o.constraint_size for o in self.outcomes]
        return sum(sizes) / len(sizes) if sizes else 0.0

    def max_constraint_size(self) -> int:
        sizes = [o.constraint_size for o in self.outcomes]
        return max(sizes) if sizes else 0

    def distinct_traces(self) -> List[OutputTrace]:
        seen: Dict[OutputTrace, None] = {}
        for outcome in self.outcomes:
            seen.setdefault(outcome.trace, None)
        return list(seen.keys())

    def summary_row(self) -> Dict[str, object]:
        """One row of the paper's Table 2 for this (agent, test) pair."""

        return {
            "agent": self.agent_name,
            "test": self.test_key,
            "message_count": self.message_count,
            "cpu_time": self.cpu_time,
            "path_count": self.path_count,
            "avg_constraint_size": self.average_constraint_size(),
            "max_constraint_size": self.max_constraint_size(),
        }

    #: Format tag stamped into serialized artifacts.
    ARTIFACT_FORMAT = "soft/exploration-artifact/v1"

    def to_dict(self) -> Dict[str, object]:
        """Serialize the whole Phase-1 result as a JSON-safe dict.

        This is the paper's vendor artifact: path conditions plus normalized
        output traces, but no agent source code.  Round-trips through
        :meth:`from_dict` to a report whose grouping and crosschecking results
        are identical to the original's.
        """

        return {
            "format": self.ARTIFACT_FORMAT,
            "agent": self.agent_name,
            "test": self.test_key,
            "scale": self.scale,
            "cpu_time": self.cpu_time,
            "path_count": self.path_count,
            "message_count": self.message_count,
            "solver_stats": dict(self.solver_stats),
            "engine_stats": dict(self.engine_stats),
            "coverage": self.coverage.as_dict() if self.coverage is not None else None,
            "truncated": self.truncated,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AgentExplorationReport":
        """Rebuild a Phase-1 artifact serialized with :meth:`to_dict`."""

        from repro.errors import ArtifactError, ExpressionError

        if not isinstance(data, dict):
            raise ArtifactError("exploration artifact must be a JSON object, got %r"
                                % (type(data).__name__,))
        tag = data.get("format", cls.ARTIFACT_FORMAT)
        if tag != cls.ARTIFACT_FORMAT:
            raise ArtifactError("unsupported artifact format %r (expected %r)"
                                % (tag, cls.ARTIFACT_FORMAT))
        try:
            outcomes = [PathOutcome.from_dict(o) for o in data.get("outcomes", [])]
            coverage_data = data.get("coverage")
            return cls(
                agent_name=str(data["agent"]),
                test_key=str(data["test"]),
                scale=str(data.get("scale", "small")),
                outcomes=outcomes,
                cpu_time=float(data.get("cpu_time", 0.0)),
                path_count=int(data.get("path_count", len(outcomes))),
                message_count=int(data.get("message_count", 0)),
                solver_stats=dict(data.get("solver_stats", {})),
                engine_stats=dict(data.get("engine_stats", {})),
                coverage=(CoverageReport.from_dict(coverage_data)
                          if coverage_data is not None else None),
                truncated=bool(data.get("truncated", False)),
            )
        except (KeyError, TypeError, ValueError, ExpressionError) as exc:
            raise ArtifactError("malformed exploration artifact: %s" % (exc,))


def _resolve_agent_factory(agent: AgentSpec) -> (str, Callable[[], OpenFlowAgent]):
    if isinstance(agent, str):
        name = agent
        return name, lambda: make_agent(name)
    if callable(agent):
        probe = agent()
        return probe.NAME, agent
    raise TypeError("agent must be a registered name or a zero-argument factory")


def explore_agent(agent: AgentSpec,
                  test: Union[str, TestSpec],
                  engine_config: Optional[EngineConfig] = None,
                  solver_config: Optional[SolverConfig] = None,
                  with_coverage: bool = False,
                  coverage_packages: Optional[Sequence[str]] = None,
                  strategy: Optional[str] = None,
                  workers: int = 1) -> AgentExplorationReport:
    """Run Phase 1 for one agent and one test specification.

    *strategy* selects the frontier discipline (overriding
    ``engine_config.strategy``); *workers* > 1 splits the exploration
    frontier across that many engines running in a thread pool, each with
    its own driver, solver, oracle and coverage tracker (per-worker
    coverage is unioned into one report).
    """

    agent_name, factory = _resolve_agent_factory(agent)
    spec = get_test(test) if isinstance(test, str) else test
    fault_point("phase1", "%s:%s" % (agent_name, spec.key))

    config = engine_config if engine_config is not None else EngineConfig()
    if strategy is not None and strategy != config.strategy:
        config = replace(config, strategy=strategy)
    workers = max(1, int(workers))

    packages = list(coverage_packages) if coverage_packages else [
        "repro.agents.common", "repro.agents.%s" % agent_name,
    ]
    trackers: List[Optional[CoverageTracker]] = []

    # Static decision-map sites become explicit targets for the
    # coverage-guided strategy: reaching one for the first time outscores
    # generic line/arc novelty.
    targets = None
    if with_coverage and config.strategy == "coverage":
        from repro.analysis.decision_map import build_decision_map

        targets = build_decision_map(packages).site_keys()

    def setup(index: int):
        worker_tracker = CoverageTracker(packages=packages) if with_coverage else None
        trackers.append(worker_tracker)
        driver = TestDriver(agent_factory=factory, inputs=spec.inputs,
                            coverage_tracker=worker_tracker)
        frontier = make_strategy(config.strategy, seed=config.strategy_seed + index,
                                 tracker=worker_tracker, targets=targets)
        return driver.program, frontier

    started = time.process_time()
    wall_started = time.perf_counter()
    result: ExplorationResult = explore_parallel(
        setup, workers, config=config,
        solver_factory=lambda: Solver(solver_config or SolverConfig()))
    cpu_time = time.process_time() - started
    wall_time = time.perf_counter() - wall_started

    tracker: Optional[CoverageTracker] = None
    if with_coverage:
        tracker = trackers[0]
        for other in trackers[1:]:
            if other is not None:
                tracker.merge_from(other)

    outcomes = [_outcome_from_record(record) for record in result.paths]
    engine_stats = result.stats.as_dict()
    engine_stats["wall_time"] = wall_time
    for name, value in result.strategy_metrics.items():
        engine_stats.setdefault(name, value)

    report = AgentExplorationReport(
        agent_name=agent_name,
        test_key=spec.key,
        scale=spec.scale,
        outcomes=outcomes,
        cpu_time=cpu_time,
        path_count=len(outcomes),
        message_count=spec.message_count,
        solver_stats=result.solver_stats,
        engine_stats=engine_stats,
        coverage=tracker.report() if tracker is not None else None,
        truncated=result.stats.truncated,
    )
    return report


def _outcome_from_record(record: PathRecord) -> PathOutcome:
    trace = OutputTrace(items=normalize_events(record.events))
    return PathOutcome(
        path_id=record.path_id,
        constraints=record.condition.constraints(),
        trace=trace,
        constraint_size=record.constraint_size(),
        decisions=len(record.decisions),
        symbols=dict(record.symbols),
        error=record.error,
    )
