"""Witness triage: minimized, deduplicated, replay-confirmed inconsistencies.

The crosscheck stage reports *raw* inconsistencies — one per satisfiable pair
of differing output groups.  The paper's end product (§3.5, Table 5) is much
smaller: many raw inconsistencies collapse to a handful of root causes, each
confirmed by concretely replaying a generated input.  This module is that
reporting layer:

* a :class:`Witness` promotes the loose ``Inconsistency`` /
  ``ConcreteTestCase`` / ``ReplayOutcome`` trio into one structured object
  carrying the solver model, the materialized inputs, both replay traces and
  a :class:`DivergenceSignature` (first divergent event index plus normalized
  event kinds, volatile fields dropped);
* :func:`minimize_witness` delta-minimizes a witness with concrete replay as
  the oracle — trailing inputs are dropped, then model variables are greedily
  zeroed or shrunk while the divergence (and its signature) persists;
* a :class:`TriageIndex` deduplicates witnesses across a whole campaign into
  :class:`WitnessCluster` s keyed by signature, each with one minimized
  representative.  The index is thread-safe so campaign worker pools can
  merge clusters concurrently;
* the resulting :class:`TriageReport` is what campaign reports, the CLI's
  ``soft triage`` verb and the persistent corpus (:mod:`repro.core.corpus`)
  consume.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.crosscheck import Inconsistency
from repro.core.testcase import ConcreteTestCase, ReplayOutcome, build_testcase
from repro.core.tests_catalog import TestSpec
from repro.core.trace import OutputTrace, TraceDiff, _deep_tuple, render_kind
from repro.errors import WitnessError
from repro.harness.driver import ConcreteRunResult
from repro.symbex.expr import BoolExpr
from repro.symbex.serialize import (
    bool_expr_from_obj,
    expr_to_obj,
    model_from_obj,
    model_to_obj,
)
from repro.wire.buffer import SymBuffer

__all__ = [
    "DivergenceSignature",
    "MinimizationStats",
    "Witness",
    "WitnessCluster",
    "TriageIndex",
    "TriageReport",
    "build_witness",
    "minimize_witness",
]

#: Replays a candidate test case against the witness's agent pair.
Replayer = Callable[[ConcreteTestCase], ReplayOutcome]

#: Format tag stamped into serialized witness bundles.
WITNESS_BUNDLE_FORMAT = "soft/witness-bundle/v1"


@dataclass(frozen=True)
class DivergenceSignature:
    """The clustering key of a witness: where and how two replays diverge.

    ``index`` is the position of the first differing trace event;
    ``kind_a``/``kind_b`` are the :func:`repro.core.trace.event_kind`
    renderings of each side's event there (``None`` = trace ended).  Volatile
    fields (xids, ports, payload lengths, timestamps) never reach the kind
    tuples, so the signature is stable under input truncation and model
    minimization.
    """

    test_key: str
    agent_a: str
    agent_b: str
    index: int
    kind_a: Optional[Tuple]
    kind_b: Optional[Tuple]

    @classmethod
    def from_diff(cls, test_key: str, agent_a: str, agent_b: str,
                  diff: TraceDiff) -> "DivergenceSignature":
        return cls(test_key=test_key, agent_a=agent_a, agent_b=agent_b,
                   index=diff.index, kind_a=diff.kind_a, kind_b=diff.kind_b)

    def key(self) -> Tuple:
        """The hashable identity used for clustering and corpus filenames."""

        return (self.test_key, self.agent_a, self.agent_b,
                self.index, self.kind_a, self.kind_b)

    def matches_diff(self, diff: TraceDiff) -> bool:
        """Whether a replay diff reproduces this signature (same pair assumed)."""

        return (diff.index, diff.kind_a, diff.kind_b) == \
            (self.index, self.kind_a, self.kind_b)

    def short(self) -> str:
        return "%s %s~%s @%d %s != %s" % (
            self.test_key, self.agent_a, self.agent_b, self.index,
            render_kind(self.kind_a), render_kind(self.kind_b))

    def to_obj(self) -> Dict[str, object]:
        return {
            "test": self.test_key,
            "agent_a": self.agent_a,
            "agent_b": self.agent_b,
            "index": self.index,
            "kind_a": list(self.kind_a) if self.kind_a is not None else None,
            "kind_b": list(self.kind_b) if self.kind_b is not None else None,
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, object]) -> "DivergenceSignature":
        try:
            return cls(
                test_key=str(obj["test"]),
                agent_a=str(obj["agent_a"]),
                agent_b=str(obj["agent_b"]),
                index=int(obj["index"]),
                kind_a=_deep_tuple(obj["kind_a"]) if obj.get("kind_a") is not None else None,
                kind_b=_deep_tuple(obj["kind_b"]) if obj.get("kind_b") is not None else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WitnessError("malformed serialized signature %r: %s" % (obj, exc))


@dataclass
class MinimizationStats:
    """Before/after accounting of one witness's delta-minimization."""

    original_variables: int
    minimized_variables: int
    original_inputs: int
    minimized_inputs: int
    dropped_variables: List[str] = field(default_factory=list)
    shrunk_variables: List[str] = field(default_factory=list)
    replays: int = 0
    wall_time: float = 0.0

    @property
    def shrink_ratio(self) -> float:
        """Fraction of (variables + inputs) the minimizer removed."""

        original = self.original_variables + self.original_inputs
        minimized = self.minimized_variables + self.minimized_inputs
        return (original - minimized) / original if original else 0.0

    @property
    def reduced(self) -> bool:
        """Strictly fewer assigned variables or inputs than the original."""

        return (self.minimized_variables < self.original_variables
                or self.minimized_inputs < self.original_inputs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "original_variables": self.original_variables,
            "minimized_variables": self.minimized_variables,
            "original_inputs": self.original_inputs,
            "minimized_inputs": self.minimized_inputs,
            "dropped_variables": list(self.dropped_variables),
            "shrunk_variables": list(self.shrunk_variables),
            "replays": self.replays,
            "wall_time": self.wall_time,
            "shrink_ratio": self.shrink_ratio,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MinimizationStats":
        return cls(
            original_variables=int(data.get("original_variables", 0)),
            minimized_variables=int(data.get("minimized_variables", 0)),
            original_inputs=int(data.get("original_inputs", 0)),
            minimized_inputs=int(data.get("minimized_inputs", 0)),
            dropped_variables=[str(v) for v in data.get("dropped_variables", [])],
            shrunk_variables=[str(v) for v in data.get("shrunk_variables", [])],
            replays=int(data.get("replays", 0)),
            wall_time=float(data.get("wall_time", 0.0)),
        )


def _inputs_to_obj(inputs: Sequence[Tuple[str, object]]) -> List[List[object]]:
    """JSON-safe rendering of fully concrete test-case inputs."""

    rendered: List[List[object]] = []
    for kind, payload in inputs:
        if kind == "control":
            rendered.append(["control", payload.to_bytes().hex()])
        elif kind == "probe":
            port, frame = payload
            rendered.append(["probe", port, frame.to_bytes().hex()])
        else:
            raise WitnessError("cannot serialize input kind %r" % (kind,))
    return rendered


def _inputs_from_obj(obj: Sequence[Sequence[object]]) -> List[Tuple[str, object]]:
    inputs: List[Tuple[str, object]] = []
    try:
        for entry in obj:
            kind = entry[0]
            if kind == "control":
                inputs.append(("control", SymBuffer(bytes.fromhex(entry[1]))))
            elif kind == "probe":
                inputs.append(("probe", (entry[1], SymBuffer(bytes.fromhex(entry[2])))))
            else:
                raise WitnessError("unknown serialized input kind %r" % (kind,))
    except (IndexError, TypeError, ValueError) as exc:
        raise WitnessError("malformed serialized inputs: %s" % (exc,))
    return inputs


@dataclass
class Witness:
    """One replay-confirmed inconsistency, structured for triage.

    Carries everything the downstream consumers need: the (possibly
    minimized) solver model and the original one, the materialized concrete
    inputs, both replay traces, the divergence signature, and — when the
    witness came out of the minimizer — the before/after stats.
    """

    test_key: str
    scale: str
    agent_a: str
    agent_b: str
    #: The assignment the inputs were materialized under (minimization
    #: shrinks this; the solver's original model stays in ``solver_model``).
    assignment: Dict[str, int]
    testcase: ConcreteTestCase
    replay: ReplayOutcome
    signature: DivergenceSignature
    #: The satisfied crosscheck condition, stored either as an expression
    #: (in-process witnesses) or as its serialized form (corpus-loaded
    #: witnesses; deserialized lazily on first ``condition`` access — replay
    #: never needs it, and parsing it dominated bundle-load time).
    _condition: Optional[BoolExpr] = field(default=None, repr=False)
    condition_obj: Optional[object] = field(default=None, repr=False)
    solver_model: Dict[str, int] = field(default_factory=dict)
    minimization: Optional[MinimizationStats] = None

    @property
    def condition(self) -> Optional[BoolExpr]:
        """The crosscheck condition (lazily deserialized when corpus-loaded)."""

        if self._condition is None and self.condition_obj is not None:
            self._condition = bool_expr_from_obj(self.condition_obj)
        return self._condition

    @property
    def confirmed(self) -> bool:
        """Whether the concrete replay reproduced a divergence."""

        return self.replay.diverged

    @property
    def variable_count(self) -> int:
        return len(self.assignment)

    @property
    def input_count(self) -> int:
        return len(self.testcase.inputs)

    @property
    def minimized(self) -> bool:
        return self.minimization is not None and self.minimization.reduced

    def size_key(self) -> Tuple:
        """Deterministic "smaller is better" ordering key for representatives."""

        return (not self.confirmed, self.variable_count, self.input_count,
                sorted(self.assignment.items()))

    def describe(self) -> str:
        lines = [
            "witness: %s" % self.signature.short(),
            "  confirmed by replay: %s" % self.confirmed,
            "  model: %d variable(s), %d input(s)%s" % (
                self.variable_count, self.input_count,
                "" if self.minimization is None else
                " (minimized from %d/%d, %d replay(s))" % (
                    self.minimization.original_variables,
                    self.minimization.original_inputs,
                    self.minimization.replays)),
        ]
        for name, value in sorted(self.assignment.items()):
            lines.append("    %s = 0x%x" % (name, value))
        if self.testcase.unbound_variables:
            lines.append("  unbound (zero-filled): %s"
                         % ", ".join(self.testcase.unbound_variables))
        lines.append("  %s: %s" % (self.agent_a, self.replay.run_a.trace.short(limit=5)))
        lines.append("  %s: %s" % (self.agent_b, self.replay.run_b.trace.short(limit=5)))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization (the corpus bundle format)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Serialize as a witness bundle: everything a solver-free replay needs."""

        return {
            "format": WITNESS_BUNDLE_FORMAT,
            "test": self.test_key,
            "scale": self.scale,
            "agent_a": self.agent_a,
            "agent_b": self.agent_b,
            "assignment": model_to_obj(self.assignment),
            "solver_model": model_to_obj(self.solver_model),
            "unbound_variables": list(self.testcase.unbound_variables),
            "inputs": _inputs_to_obj(self.testcase.inputs),
            "trace_a": self.replay.run_a.trace.to_obj(),
            "trace_b": self.replay.run_b.trace.to_obj(),
            "crashed_a": self.replay.run_a.crashed,
            "crashed_b": self.replay.run_b.crashed,
            "inputs_consumed_a": self.replay.run_a.inputs_consumed,
            "inputs_consumed_b": self.replay.run_b.inputs_consumed,
            "signature": self.signature.to_obj(),
            # A corpus-loaded witness round-trips its raw condition object
            # without ever deserializing it.
            "condition": (self.condition_obj if self.condition_obj is not None
                          else (expr_to_obj(self._condition)
                                if self._condition is not None else None)),
            "minimization": (self.minimization.to_dict()
                             if self.minimization is not None else None),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Witness":
        """Rebuild a witness bundle serialized with :meth:`to_dict`."""

        if not isinstance(data, dict):
            raise WitnessError("witness bundle must be a JSON object, got %r"
                               % (type(data).__name__,))
        tag = data.get("format", WITNESS_BUNDLE_FORMAT)
        if tag != WITNESS_BUNDLE_FORMAT:
            raise WitnessError("unsupported witness bundle format %r (expected %r)"
                               % (tag, WITNESS_BUNDLE_FORMAT))
        try:
            assignment = model_from_obj(data.get("assignment", {}))
            testcase = ConcreteTestCase(
                test_key=str(data["test"]),
                assignment=assignment,
                inputs=_inputs_from_obj(data.get("inputs", [])),
                unbound_variables=[str(v) for v in data.get("unbound_variables", [])],
            )
            run_a = ConcreteRunResult(
                agent_name=str(data["agent_a"]),
                trace=OutputTrace.from_obj(data.get("trace_a", [])),
                crashed=bool(data.get("crashed_a", False)),
                inputs_consumed=int(data.get("inputs_consumed_a", len(testcase.inputs))),
            )
            run_b = ConcreteRunResult(
                agent_name=str(data["agent_b"]),
                trace=OutputTrace.from_obj(data.get("trace_b", [])),
                crashed=bool(data.get("crashed_b", False)),
                inputs_consumed=int(data.get("inputs_consumed_b", len(testcase.inputs))),
            )
            condition_obj = data.get("condition")
            minimization_obj = data.get("minimization")
            return cls(
                test_key=str(data["test"]),
                scale=str(data.get("scale", "small")),
                agent_a=str(data["agent_a"]),
                agent_b=str(data["agent_b"]),
                assignment=assignment,
                testcase=testcase,
                replay=ReplayOutcome(testcase=testcase, run_a=run_a, run_b=run_b),
                signature=DivergenceSignature.from_obj(data["signature"]),
                condition_obj=condition_obj,
                solver_model=model_from_obj(data.get("solver_model", {})),
                minimization=(MinimizationStats.from_dict(minimization_obj)
                              if minimization_obj is not None else None),
            )
        except WitnessError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise WitnessError("malformed witness bundle: %s" % (exc,))


def build_witness(spec: TestSpec, inconsistency: Inconsistency,
                  testcase: ConcreteTestCase,
                  replay: ReplayOutcome) -> Witness:
    """Assemble a structured witness from the loose crosscheck/replay trio.

    The signature is computed from the *concrete* replay traces — what
    actually happened — not from the symbolic group traces the solver
    predicted.  A non-diverging replay yields an unconfirmed witness whose
    signature records "identical" (index -1); triage surfaces those as
    pipeline errors rather than hiding them.
    """

    diff = replay.run_a.trace.diff(replay.run_b.trace)
    signature = DivergenceSignature.from_diff(
        spec.key, inconsistency.agent_a, inconsistency.agent_b, diff)
    return Witness(
        test_key=spec.key,
        scale=spec.scale,
        agent_a=inconsistency.agent_a,
        agent_b=inconsistency.agent_b,
        assignment=dict(testcase.assignment),
        testcase=testcase,
        replay=replay,
        signature=signature,
        _condition=inconsistency.condition,
        solver_model=dict(inconsistency.example),
    )


def minimize_witness(witness: Witness, spec: TestSpec, replayer: Replayer,
                     max_replays: int = 96,
                     require_same_signature: bool = True,
                     shrink_values: bool = True) -> Witness:
    """Delta-minimize *witness* with concrete replay as the oracle.

    Three greedy passes, each keeping a change only while the replay still
    diverges (and, by default, with the same :class:`DivergenceSignature`):

    1. drop trailing inputs (seeded by how many inputs the replayed agents
       actually consumed — inputs past both agents' consumption are free);
    2. drop model variables one by one — a dropped variable is zero-filled by
       materialization and recorded as unbound;
    3. optionally shrink the surviving values toward zero (1, then halving).

    Returns a new witness with :class:`MinimizationStats` attached; the
    original solver model is preserved in ``solver_model``.  An unconfirmed
    witness is returned unchanged — there is no divergence to preserve.
    """

    if not witness.confirmed:
        return witness

    started = time.perf_counter()
    replays = 0
    signature = witness.signature

    def oracle(candidate: ConcreteTestCase) -> Optional[ReplayOutcome]:
        nonlocal replays
        replays += 1
        outcome = replayer(candidate)
        if not outcome.diverged:
            return None
        if require_same_signature and not signature.matches_diff(outcome.diff()):
            return None
        return outcome

    assignment = dict(witness.assignment)
    keep_inputs = len(witness.testcase.inputs)
    best_testcase = witness.testcase
    best_replay = witness.replay
    original_variables = len(assignment)
    original_inputs = keep_inputs
    dropped: List[str] = []
    shrunk: List[str] = []

    def rebuild(trial_assignment: Dict[str, int], inputs: int) -> ConcreteTestCase:
        return build_testcase(spec, trial_assignment,
                              inconsistency=witness.testcase.inconsistency,
                              max_inputs=inputs)

    # Pass 1: trailing inputs.  Inputs past what either agent consumed cannot
    # have influenced either trace, so jump there first, then walk down.
    consumed = max(best_replay.run_a.inputs_consumed,
                   best_replay.run_b.inputs_consumed)
    if 0 < consumed < keep_inputs and replays < max_replays:
        candidate = rebuild(assignment, consumed)
        outcome = oracle(candidate)
        if outcome is not None:
            keep_inputs = consumed
            best_testcase, best_replay = candidate, outcome
    while keep_inputs > 1 and replays < max_replays:
        candidate = rebuild(assignment, keep_inputs - 1)
        outcome = oracle(candidate)
        if outcome is None:
            break
        keep_inputs -= 1
        best_testcase, best_replay = candidate, outcome

    # Pass 2: greedy variable dropping (deterministic order).
    for name in sorted(witness.assignment):
        if replays >= max_replays:
            break
        if name not in assignment:
            continue
        trial = {key: value for key, value in assignment.items() if key != name}
        candidate = rebuild(trial, keep_inputs)
        outcome = oracle(candidate)
        if outcome is not None:
            assignment = trial
            dropped.append(name)
            best_testcase, best_replay = candidate, outcome

    # Pass 3: shrink surviving values toward zero (zero itself is equivalent
    # to dropping, which pass 2 already rejected).
    if shrink_values:
        for name in sorted(assignment):
            value = assignment[name]
            for smaller in dict.fromkeys((1, value >> 1)):
                if replays >= max_replays:
                    break
                if smaller in (0, value):
                    continue
                trial = dict(assignment)
                trial[name] = smaller
                candidate = rebuild(trial, keep_inputs)
                outcome = oracle(candidate)
                if outcome is not None:
                    assignment = trial
                    shrunk.append(name)
                    best_testcase, best_replay = candidate, outcome
                    break

    stats = MinimizationStats(
        original_variables=original_variables,
        minimized_variables=len(assignment),
        original_inputs=original_inputs,
        minimized_inputs=len(best_testcase.inputs),
        dropped_variables=dropped,
        shrunk_variables=shrunk,
        replays=replays,
        wall_time=time.perf_counter() - started,
    )
    return Witness(
        test_key=witness.test_key,
        scale=witness.scale,
        agent_a=witness.agent_a,
        agent_b=witness.agent_b,
        assignment=assignment,
        testcase=best_testcase,
        replay=best_replay,
        signature=signature,
        _condition=witness._condition,
        condition_obj=witness.condition_obj,
        solver_model=dict(witness.solver_model),
        minimization=stats,
    )


@dataclass
class WitnessCluster:
    """All witnesses of one campaign that share a divergence signature."""

    signature: DivergenceSignature
    witnesses: List[Witness] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.witnesses)

    @property
    def representative(self) -> Witness:
        """The smallest (minimized, confirmed-first) witness of the cluster."""

        if not self.witnesses:
            raise WitnessError("cluster %s has no witnesses" % (self.signature.short(),))
        return min(self.witnesses, key=Witness.size_key)

    @property
    def confirmed_count(self) -> int:
        return sum(1 for witness in self.witnesses if witness.confirmed)

    def add(self, witness: Witness) -> None:
        self.witnesses.append(witness)

    def summary_row(self) -> Dict[str, object]:
        representative = self.representative
        minimization = representative.minimization
        return {
            "test": self.signature.test_key,
            "agent_a": self.signature.agent_a,
            "agent_b": self.signature.agent_b,
            "signature": self.signature.short(),
            "witnesses": self.size,
            "confirmed": self.confirmed_count,
            "variables": representative.variable_count,
            "inputs": representative.input_count,
            "original_variables": (minimization.original_variables
                                   if minimization else representative.variable_count),
            "shrink_ratio": minimization.shrink_ratio if minimization else 0.0,
        }

    def to_dict(self) -> Dict[str, object]:
        row = self.summary_row()
        row["signature_detail"] = self.signature.to_obj()
        row["representative"] = self.representative.to_dict()
        return row

    def describe(self) -> str:
        representative = self.representative
        lines = [
            "cluster %s: %d witness(es), %d confirmed"
            % (self.signature.short(), self.size, self.confirmed_count),
            "  representative: " + representative.describe().replace("\n", "\n  "),
        ]
        return "\n".join(lines)


class TriageIndex:
    """Thread-safe, campaign-wide clustering of witnesses by signature.

    Pair crosschecks run on a worker pool; each worker adds its (minimized)
    witnesses as it finishes and the index merges them into clusters under a
    lock.  ``merge_from`` folds another index in, for process-pool results
    that clustered locally.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clusters: Dict[Tuple, WitnessCluster] = {}

    def add(self, witness: Witness) -> WitnessCluster:
        key = witness.signature.key()
        with self._lock:
            cluster = self._clusters.get(key)
            if cluster is None:
                cluster = WitnessCluster(signature=witness.signature)
                self._clusters[key] = cluster
            cluster.add(witness)
            return cluster

    def add_all(self, witnesses: Sequence[Witness]) -> None:
        for witness in witnesses:
            self.add(witness)

    def merge_from(self, other: "TriageIndex") -> None:
        for cluster in other.clusters():
            for witness in cluster.witnesses:
                self.add(witness)

    def clusters(self) -> List[WitnessCluster]:
        """Clusters sorted largest-first (ties broken by signature text)."""

        with self._lock:
            clusters = list(self._clusters.values())
        return sorted(clusters, key=lambda c: (-c.size, c.signature.short()))

    @property
    def witness_count(self) -> int:
        with self._lock:
            return sum(cluster.size for cluster in self._clusters.values())

    def report(self, triage_time: float = 0.0,
               skipped_pairs: Optional[List[Tuple[str, str, str, str]]] = None,
               ) -> "TriageReport":
        clusters = self.clusters()
        witnesses = [witness for cluster in clusters for witness in cluster.witnesses]
        minimizations = [w.minimization for w in witnesses if w.minimization is not None]
        return TriageReport(
            clusters=clusters,
            raw_witnesses=len(witnesses),
            confirmed_witnesses=sum(1 for w in witnesses if w.confirmed),
            minimization_replays=sum(m.replays for m in minimizations),
            mean_shrink_ratio=(sum(m.shrink_ratio for m in minimizations)
                               / len(minimizations) if minimizations else 0.0),
            skipped_pairs=list(skipped_pairs or []),
            triage_time=triage_time,
        )


@dataclass
class TriageReport:
    """Campaign-level triage summary: clusters, confirmation and shrink stats."""

    clusters: List[WitnessCluster]
    raw_witnesses: int
    confirmed_witnesses: int
    minimization_replays: int
    mean_shrink_ratio: float
    #: (test, agent_a, agent_b, reason) for pairs whose inconsistencies
    #: bypassed triage — e.g. an artifact-only agent that cannot be replayed,
    #: or replay/testcase generation disabled on the campaign.
    skipped_pairs: List[Tuple[str, str, str, str]] = field(default_factory=list)
    triage_time: float = 0.0

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    @property
    def merged_cluster_count(self) -> int:
        """Clusters that absorbed more than one raw witness."""

        return sum(1 for cluster in self.clusters if cluster.size > 1)

    @property
    def unconfirmed_witnesses(self) -> int:
        return self.raw_witnesses - self.confirmed_witnesses

    @property
    def dedup_ratio(self) -> float:
        """Raw witnesses per cluster (>= 1; higher = more duplication removed)."""

        return self.raw_witnesses / self.cluster_count if self.clusters else 0.0

    def representatives(self) -> List[Witness]:
        return [cluster.representative for cluster in self.clusters]

    def to_dict(self) -> Dict[str, object]:
        return {
            "raw_witnesses": self.raw_witnesses,
            "confirmed_witnesses": self.confirmed_witnesses,
            "unconfirmed_witnesses": self.unconfirmed_witnesses,
            "clusters": self.cluster_count,
            "merged_clusters": self.merged_cluster_count,
            "dedup_ratio": self.dedup_ratio,
            "minimization_replays": self.minimization_replays,
            "mean_shrink_ratio": self.mean_shrink_ratio,
            "skipped_pairs": [list(pair) for pair in self.skipped_pairs],
            "triage_time": self.triage_time,
            "cluster_rows": [cluster.summary_row() for cluster in self.clusters],
        }

    def describe(self) -> str:
        lines = [
            "triage: %d raw witness(es) -> %d cluster(s) (%d merged >= 2), "
            "%d confirmed, %d unconfirmed"
            % (self.raw_witnesses, self.cluster_count, self.merged_cluster_count,
               self.confirmed_witnesses, self.unconfirmed_witnesses),
            "  minimization: %d replay(s), mean shrink %.0f%%"
            % (self.minimization_replays, 100.0 * self.mean_shrink_ratio),
        ]
        if self.skipped_pairs:
            lines.append("  skipped: %s"
                         % ", ".join("%s %s~%s (%s)" % pair
                                     for pair in self.skipped_pairs))
        if self.clusters:
            lines.append("  %-52s %5s %5s %9s %8s"
                         % ("SIGNATURE", "RAW", "CONF", "VARS", "SHRINK"))
            for cluster in self.clusters:
                row = cluster.summary_row()
                lines.append("  %-52s %5d %5d %4d<-%-4d %7.0f%%"
                             % (row["signature"][:52], row["witnesses"], row["confirmed"],
                                row["variables"], row["original_variables"],
                                100.0 * row["shrink_ratio"]))
        return "\n".join(lines)
