"""The end-to-end SOFT pipeline.

:class:`SOFT` wires Phase 1 (per-agent symbolic exploration), Phase 2a
(grouping by output) and Phase 2b (crosschecking with the constraint solver)
behind one object, and optionally materializes and replays a concrete test
case per inconsistency.  This is the API the examples and the CLI use; the
individual stages remain available for users who want the paper's
"vendors run Phase 1 independently" workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.crosscheck import CrosscheckReport, Inconsistency, find_inconsistencies
from repro.core.explorer import AgentExplorationReport, explore_agent
from repro.core.grouping import GroupedResults, group_paths
from repro.core.testcase import ConcreteTestCase, ReplayOutcome
from repro.core.tests_catalog import TestSpec
from repro.core.witness import Witness
from repro.symbex.engine import EngineConfig
from repro.symbex.solver import GroupEncoding, Solver, SolverConfig

__all__ = ["SOFT", "SoftReport"]


@dataclass
class SoftReport:
    """Complete result of one SOFT run over one test and two agents."""

    test_key: str
    agent_a: str
    agent_b: str
    exploration_a: AgentExplorationReport
    exploration_b: AgentExplorationReport
    grouped_a: GroupedResults
    grouped_b: GroupedResults
    crosscheck: CrosscheckReport
    testcases: List[ConcreteTestCase] = field(default_factory=list)
    replays: List[ReplayOutcome] = field(default_factory=list)
    #: Structured (replay-confirmed, possibly minimized) witnesses — one per
    #: inconsistency when the pair went through triage, empty otherwise.
    witnesses: List[Witness] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def inconsistencies(self) -> List[Inconsistency]:
        return self.crosscheck.inconsistencies

    @property
    def inconsistency_count(self) -> int:
        return self.crosscheck.inconsistency_count

    def verified_inconsistency_count(self) -> int:
        """Inconsistencies whose concrete replay reproduced the divergence."""

        return sum(1 for replay in self.replays if replay.diverged)

    def summary_row(self) -> Dict[str, object]:
        """One flat row of counts shared by :meth:`describe`, the CLI table and JSON.

        Solver-query and replay-verified counts come from here everywhere, so
        the human-readable and machine-readable outputs can never disagree.
        """

        return {
            "test": self.test_key,
            "agent_a": self.agent_a,
            "agent_b": self.agent_b,
            "paths_a": self.exploration_a.path_count,
            "paths_b": self.exploration_b.path_count,
            "outputs_a": self.grouped_a.distinct_output_count,
            "outputs_b": self.grouped_b.distinct_output_count,
            "solver_queries": self.crosscheck.queries,
            "inconsistencies": self.inconsistency_count,
            "replay_verified": self.verified_inconsistency_count(),
            "total_time": self.total_time,
        }

    def describe(self) -> str:
        row = self.summary_row()
        lines = [
            "SOFT report: test=%s agents=%s vs %s" % (self.test_key, self.agent_a, self.agent_b),
            "  %s: %d paths, %d distinct outputs" % (
                self.agent_a, row["paths_a"], row["outputs_a"]),
            "  %s: %d paths, %d distinct outputs" % (
                self.agent_b, row["paths_b"], row["outputs_b"]),
            "  solver queries: %d, inconsistencies: %d (%d replay-verified)" % (
                row["solver_queries"], row["inconsistencies"], row["replay_verified"]),
            "  total time: %.2fs" % row["total_time"],
        ]
        for index, inconsistency in enumerate(self.inconsistencies):
            lines.append("  --- inconsistency %d ---" % (index + 1))
            lines.append("  " + inconsistency.describe().replace("\n", "\n  "))
        return "\n".join(lines)


class SOFT:
    """Systematic OpenFlow Testing: the paper's tool, end to end."""

    def __init__(self, engine_config: Optional[EngineConfig] = None,
                 solver_config: Optional[SolverConfig] = None,
                 with_coverage: bool = False,
                 build_testcases: bool = True,
                 replay_testcases: bool = True,
                 incremental: bool = True,
                 triage: bool = True) -> None:
        self.engine_config = engine_config
        self.solver_config = solver_config
        self.with_coverage = with_coverage
        self.build_testcases = build_testcases
        self.replay_testcases = replay_testcases
        self.incremental = incremental
        self.triage = triage

    # ------------------------------------------------------------------
    # Individual phases
    # ------------------------------------------------------------------

    def explore(self, agent: str, test: Union[str, TestSpec]) -> AgentExplorationReport:
        """Phase 1 for one agent (what a vendor runs in-house)."""

        return explore_agent(agent, test, engine_config=self.engine_config,
                             solver_config=self.solver_config,
                             with_coverage=self.with_coverage)

    def group(self, report: AgentExplorationReport) -> GroupedResults:
        """Phase 2a: group one agent's paths by output."""

        return group_paths(report)

    def crosscheck(self, grouped_a: GroupedResults,
                   grouped_b: GroupedResults) -> CrosscheckReport:
        """Phase 2b: find inconsistencies between two grouped results."""

        if self.incremental:
            engine = GroupEncoding(self.solver_config or SolverConfig())
            return find_inconsistencies(grouped_a, grouped_b, engine=engine)
        return find_inconsistencies(grouped_a, grouped_b,
                                    solver=Solver(self.solver_config or SolverConfig()))

    # ------------------------------------------------------------------
    # End-to-end convenience
    # ------------------------------------------------------------------

    def _campaign(self, tests: Sequence[Union[str, TestSpec]], agent_a: str,
                  agent_b: str):
        """A single-pair campaign mirroring this SOFT instance's configuration."""

        from repro.core.campaign import Campaign

        return Campaign(
            tests=list(tests),
            pairs=[(agent_a, agent_b)],
            engine_config=self.engine_config,
            solver_config=self.solver_config,
            with_coverage=self.with_coverage,
            build_testcases=self.build_testcases,
            replay_testcases=self.replay_testcases,
            incremental=self.incremental,
            triage=self.triage,
        )

    def run(self, test: Union[str, TestSpec], agent_a: str, agent_b: str) -> SoftReport:
        """Run the full pipeline for one test and one pair of agents.

        Thin wrapper over a single-pair :class:`~repro.core.campaign.Campaign`.
        """

        return self._campaign([test], agent_a, agent_b).run().reports[0]

    def run_many(self, tests: Sequence[Union[str, TestSpec]], agent_a: str,
                 agent_b: str) -> Dict[str, SoftReport]:
        """Run the full pipeline for several tests against the same agent pair."""

        campaign_report = self._campaign(tests, agent_a, agent_b).run()
        return {report.test_key: report for report in campaign_report.reports}
