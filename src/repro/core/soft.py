"""The end-to-end SOFT pipeline.

:class:`SOFT` wires Phase 1 (per-agent symbolic exploration), Phase 2a
(grouping by output) and Phase 2b (crosschecking with the constraint solver)
behind one object, and optionally materializes and replays a concrete test
case per inconsistency.  This is the API the examples and the CLI use; the
individual stages remain available for users who want the paper's
"vendors run Phase 1 independently" workflow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.crosscheck import CrosscheckReport, Inconsistency, find_inconsistencies
from repro.core.explorer import AgentExplorationReport, explore_agent
from repro.core.grouping import GroupedResults, group_paths
from repro.core.testcase import ConcreteTestCase, ReplayOutcome, build_testcase, replay_testcase
from repro.core.tests_catalog import TestSpec, get_test
from repro.symbex.engine import EngineConfig
from repro.symbex.solver import Solver, SolverConfig

__all__ = ["SOFT", "SoftReport"]


@dataclass
class SoftReport:
    """Complete result of one SOFT run over one test and two agents."""

    test_key: str
    agent_a: str
    agent_b: str
    exploration_a: AgentExplorationReport
    exploration_b: AgentExplorationReport
    grouped_a: GroupedResults
    grouped_b: GroupedResults
    crosscheck: CrosscheckReport
    testcases: List[ConcreteTestCase] = field(default_factory=list)
    replays: List[ReplayOutcome] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def inconsistencies(self) -> List[Inconsistency]:
        return self.crosscheck.inconsistencies

    @property
    def inconsistency_count(self) -> int:
        return self.crosscheck.inconsistency_count

    def verified_inconsistency_count(self) -> int:
        """Inconsistencies whose concrete replay reproduced the divergence."""

        return sum(1 for replay in self.replays if replay.diverged)

    def describe(self) -> str:
        lines = [
            "SOFT report: test=%s agents=%s vs %s" % (self.test_key, self.agent_a, self.agent_b),
            "  %s: %d paths, %d distinct outputs" % (
                self.agent_a, self.exploration_a.path_count, self.grouped_a.distinct_output_count),
            "  %s: %d paths, %d distinct outputs" % (
                self.agent_b, self.exploration_b.path_count, self.grouped_b.distinct_output_count),
            "  solver queries: %d, inconsistencies: %d (%d replay-verified)" % (
                self.crosscheck.queries, self.inconsistency_count,
                self.verified_inconsistency_count()),
            "  total time: %.2fs" % self.total_time,
        ]
        for index, inconsistency in enumerate(self.inconsistencies):
            lines.append("  --- inconsistency %d ---" % (index + 1))
            lines.append("  " + inconsistency.describe().replace("\n", "\n  "))
        return "\n".join(lines)


class SOFT:
    """Systematic OpenFlow Testing: the paper's tool, end to end."""

    def __init__(self, engine_config: Optional[EngineConfig] = None,
                 solver_config: Optional[SolverConfig] = None,
                 with_coverage: bool = False,
                 build_testcases: bool = True,
                 replay_testcases: bool = True) -> None:
        self.engine_config = engine_config
        self.solver_config = solver_config
        self.with_coverage = with_coverage
        self.build_testcases = build_testcases
        self.replay_testcases = replay_testcases

    # ------------------------------------------------------------------
    # Individual phases
    # ------------------------------------------------------------------

    def explore(self, agent: str, test: Union[str, TestSpec]) -> AgentExplorationReport:
        """Phase 1 for one agent (what a vendor runs in-house)."""

        return explore_agent(agent, test, engine_config=self.engine_config,
                             solver_config=self.solver_config,
                             with_coverage=self.with_coverage)

    def group(self, report: AgentExplorationReport) -> GroupedResults:
        """Phase 2a: group one agent's paths by output."""

        return group_paths(report)

    def crosscheck(self, grouped_a: GroupedResults,
                   grouped_b: GroupedResults) -> CrosscheckReport:
        """Phase 2b: find inconsistencies between two grouped results."""

        return find_inconsistencies(grouped_a, grouped_b,
                                    solver=Solver(self.solver_config or SolverConfig()))

    # ------------------------------------------------------------------
    # End-to-end convenience
    # ------------------------------------------------------------------

    def run(self, test: Union[str, TestSpec], agent_a: str, agent_b: str) -> SoftReport:
        """Run the full pipeline for one test and one pair of agents."""

        started = time.perf_counter()
        spec = get_test(test) if isinstance(test, str) else test

        exploration_a = self.explore(agent_a, spec)
        exploration_b = self.explore(agent_b, spec)
        grouped_a = self.group(exploration_a)
        grouped_b = self.group(exploration_b)
        crosscheck = self.crosscheck(grouped_a, grouped_b)

        testcases: List[ConcreteTestCase] = []
        replays: List[ReplayOutcome] = []
        if self.build_testcases:
            for inconsistency in crosscheck.inconsistencies:
                testcase = build_testcase(spec, inconsistency.example, inconsistency)
                testcases.append(testcase)
                if self.replay_testcases:
                    replays.append(replay_testcase(testcase, agent_a, agent_b))

        return SoftReport(
            test_key=spec.key,
            agent_a=agent_a,
            agent_b=agent_b,
            exploration_a=exploration_a,
            exploration_b=exploration_b,
            grouped_a=grouped_a,
            grouped_b=grouped_b,
            crosscheck=crosscheck,
            testcases=testcases,
            replays=replays,
            total_time=time.perf_counter() - started,
        )

    def run_many(self, tests: Sequence[Union[str, TestSpec]], agent_a: str,
                 agent_b: str) -> Dict[str, SoftReport]:
        """Run the full pipeline for several tests against the same agent pair."""

        reports: Dict[str, SoftReport] = {}
        for test in tests:
            report = self.run(test, agent_a, agent_b)
            reports[report.test_key] = report
        return reports
