"""Output traces and normalization (§3.3 of the paper).

A path's *output trace* is the normalized sequence of externally observable
events the agent produced while processing the input sequence.  Normalization
removes data for which spurious differences are expected — transaction ids
picked by the agent, buffer identifiers, padding — so that two agents that
behave the same produce byte-identical traces and can be grouped/compared
cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.events import Event
from repro.openflow import constants as c
from repro.openflow.messages import (
    BarrierReply,
    EchoReply,
    ErrorMsg,
    FeaturesReply,
    FlowRemoved,
    GetConfigReply,
    OpenFlowMessage,
    PacketIn,
    QueueGetConfigReply,
    StatsReply,
)
from repro.wire.fields import field_repr

__all__ = ["OutputTrace", "normalize_message", "normalize_events"]


def _deep_tuple(value):
    """Recursively turn lists/tuples into tuples (JSON round-trip helper)."""

    if isinstance(value, (list, tuple)):
        return tuple(_deep_tuple(item) for item in value)
    return value


def _deep_list(value):
    """Recursively turn tuples into lists so :mod:`json` can dump them."""

    if isinstance(value, (list, tuple)):
        return [_deep_list(item) for item in value]
    return value


def normalize_message(message: OpenFlowMessage) -> Tuple:
    """Normalize one switch-to-controller message into a comparable tuple.

    Transaction ids are dropped (they echo controller-chosen values), buffer
    ids are reduced to "buffered"/"unbuffered", and payloads are reduced to
    their length — mirroring the normalization rules of §3.3.
    """

    if isinstance(message, ErrorMsg):
        return ("ERROR", field_repr(message.err_type), field_repr(message.code))
    if isinstance(message, PacketIn):
        buffered = "unbuffered"
        if isinstance(message.buffer_id, int) and message.buffer_id != c.OFP_NO_BUFFER:
            buffered = "buffered"
        data = message.data
        data_len = len(data) if not isinstance(data, (bytes, bytearray)) else len(data)
        return ("PACKET_IN", field_repr(message.in_port), field_repr(message.reason),
                buffered, data_len)
    if isinstance(message, EchoReply):
        return ("ECHO_REPLY", len(message.data))
    if isinstance(message, FeaturesReply):
        return ("FEATURES_REPLY", message.n_tables, len(message.ports))
    if isinstance(message, GetConfigReply):
        return ("GET_CONFIG_REPLY", field_repr(message.flags), field_repr(message.miss_send_len))
    if isinstance(message, StatsReply):
        return ("STATS_REPLY", field_repr(message.stats_type), message.summary)
    if isinstance(message, BarrierReply):
        return ("BARRIER_REPLY",)
    if isinstance(message, QueueGetConfigReply):
        return ("QUEUE_GET_CONFIG_REPLY", field_repr(message.port), len(message.queues))
    if isinstance(message, FlowRemoved):
        return ("FLOW_REMOVED", field_repr(message.reason), field_repr(message.priority))
    return (message.type_name, message.describe())


def normalize_events(events: Iterable[Event]) -> Tuple[Tuple, ...]:
    """Normalize a whole event list into a hashable trace."""

    return tuple(event.normalized() for event in events)


@dataclass(frozen=True)
class OutputTrace:
    """A normalized, hashable output trace."""

    items: Tuple[Tuple, ...]

    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "OutputTrace":
        return cls(items=normalize_events(events))

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OutputTrace):
            return NotImplemented
        return self.items == other.items

    def __hash__(self) -> int:
        return hash(self.items)

    @property
    def is_empty(self) -> bool:
        return not self.items

    def to_obj(self) -> List:
        """JSON-safe rendering (nested lists of scalars)."""

        return _deep_list(self.items)

    @classmethod
    def from_obj(cls, obj: Sequence) -> "OutputTrace":
        """Rebuild a trace from :meth:`to_obj` output; hash/equality round-trip."""

        return cls(items=_deep_tuple(obj))

    def describe(self) -> str:
        """Multi-line human readable rendering for reports."""

        if not self.items:
            return "(no observable output)"
        return "\n".join("  %d. %s" % (index + 1, " ".join(str(part) for part in item))
                         for index, item in enumerate(self.items))

    def short(self, limit: int = 3) -> str:
        """Single-line rendering used in tables and logs."""

        rendered = ["/".join(str(part) for part in item) for item in self.items[:limit]]
        suffix = " ..." if len(self.items) > limit else ""
        return "[" + "; ".join(rendered) + suffix + "]" if rendered else "[empty]"
