"""Output traces and normalization (§3.3 of the paper).

A path's *output trace* is the normalized sequence of externally observable
events the agent produced while processing the input sequence.  Normalization
removes data for which spurious differences are expected — transaction ids
picked by the agent, buffer identifiers, padding — so that two agents that
behave the same produce byte-identical traces and can be grouped/compared
cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.events import Event
from repro.openflow import constants as c
from repro.openflow.messages import (
    BarrierReply,
    EchoReply,
    ErrorMsg,
    FeaturesReply,
    FlowRemoved,
    GetConfigReply,
    OpenFlowMessage,
    PacketIn,
    QueueGetConfigReply,
    StatsReply,
)
from repro.wire.fields import field_repr

__all__ = ["OutputTrace", "TraceDiff", "event_kind", "render_kind",
           "normalize_message", "normalize_events"]


def _deep_tuple(value):
    """Recursively turn lists/tuples into tuples (JSON round-trip helper)."""

    if isinstance(value, (list, tuple)):
        return tuple(_deep_tuple(item) for item in value)
    return value


def _deep_list(value):
    """Recursively turn tuples into lists so :mod:`json` can dump them."""

    if isinstance(value, (list, tuple)):
        return [_deep_list(item) for item in value]
    return value


def normalize_message(message: OpenFlowMessage) -> Tuple:
    """Normalize one switch-to-controller message into a comparable tuple.

    Transaction ids are dropped (they echo controller-chosen values), buffer
    ids are reduced to "buffered"/"unbuffered", and payloads are reduced to
    their length — mirroring the normalization rules of §3.3.
    """

    if isinstance(message, ErrorMsg):
        return ("ERROR", field_repr(message.err_type), field_repr(message.code))
    if isinstance(message, PacketIn):
        buffered = "unbuffered"
        if isinstance(message.buffer_id, int) and message.buffer_id != c.OFP_NO_BUFFER:
            buffered = "buffered"
        data = message.data
        data_len = len(data) if not isinstance(data, (bytes, bytearray)) else len(data)
        return ("PACKET_IN", field_repr(message.in_port), field_repr(message.reason),
                buffered, data_len)
    if isinstance(message, EchoReply):
        return ("ECHO_REPLY", len(message.data))
    if isinstance(message, FeaturesReply):
        return ("FEATURES_REPLY", message.n_tables, len(message.ports))
    if isinstance(message, GetConfigReply):
        return ("GET_CONFIG_REPLY", field_repr(message.flags), field_repr(message.miss_send_len))
    if isinstance(message, StatsReply):
        return ("STATS_REPLY", field_repr(message.stats_type), message.summary)
    if isinstance(message, BarrierReply):
        return ("BARRIER_REPLY",)
    if isinstance(message, QueueGetConfigReply):
        return ("QUEUE_GET_CONFIG_REPLY", field_repr(message.port), len(message.queues))
    if isinstance(message, FlowRemoved):
        return ("FLOW_REMOVED", field_repr(message.reason), field_repr(message.priority))
    return (message.type_name, message.describe())


def normalize_events(events: Iterable[Event]) -> Tuple[Tuple, ...]:
    """Normalize a whole event list into a hashable trace."""

    return tuple(event.normalized() for event in events)


def event_kind(item: Optional[Tuple]) -> Optional[Tuple]:
    """Collapse one normalized trace event into its stable *kind*.

    The kind is the clustering granularity of the witness triage stage: it
    keeps what distinguishes root causes (the event class; for controller
    messages the message tag, and for errors the type/code pair) and drops
    everything volatile under input truncation and model minimization (input
    indices, ports, payload lengths, frame summaries).  ``None`` stands for
    "the trace ended here".
    """

    if item is None:
        return None
    tag = item[0]
    if tag == "ctrl_msg" and len(item) >= 3 and isinstance(item[2], (tuple, list)):
        message = item[2]
        if message and message[0] == "ERROR" and len(message) >= 3:
            return ("ctrl_msg", "ERROR", str(message[1]), str(message[2]))
        return ("ctrl_msg", str(message[0]) if message else "?")
    return (str(tag),)


def render_kind(kind: Optional[Tuple]) -> str:
    """Human rendering of an event kind; ``None`` (trace ended) -> ``(end)``."""

    return "/".join(str(part) for part in kind) if kind else "(end)"


@dataclass(frozen=True)
class TraceDiff:
    """The first point of divergence between two normalized traces (§3.5).

    ``index`` is the position of the first differing event (``-1`` when the
    traces are identical); ``kind_a``/``kind_b`` are the :func:`event_kind`
    of each side's event at that position (``None`` for a trace that already
    ended).  The (index, kind_a, kind_b) triple is the divergence signature
    the triage stage clusters witnesses by.
    """

    index: int
    kind_a: Optional[Tuple]
    kind_b: Optional[Tuple]
    len_a: int
    len_b: int

    @property
    def diverged(self) -> bool:
        return self.index >= 0

    def signature(self) -> Tuple:
        """The hashable clustering key derived from this diff."""

        return (self.index, self.kind_a, self.kind_b)

    def describe(self) -> str:
        if not self.diverged:
            return "traces identical (%d event(s))" % self.len_a
        return "diverge at event %d: %s != %s" % (
            self.index, render_kind(self.kind_a), render_kind(self.kind_b))


@dataclass(frozen=True)
class OutputTrace:
    """A normalized, hashable output trace."""

    items: Tuple[Tuple, ...]

    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "OutputTrace":
        return cls(items=normalize_events(events))

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OutputTrace):
            return NotImplemented
        return self.items == other.items

    def __hash__(self) -> int:
        return hash(self.items)

    @property
    def is_empty(self) -> bool:
        return not self.items

    def to_obj(self) -> List:
        """JSON-safe rendering (nested lists of scalars)."""

        return _deep_list(self.items)

    @classmethod
    def from_obj(cls, obj: Sequence) -> "OutputTrace":
        """Rebuild a trace from :meth:`to_obj` output; hash/equality round-trip."""

        return cls(items=_deep_tuple(obj))

    def diff(self, other: "OutputTrace") -> TraceDiff:
        """Locate the first divergent event between this trace and *other*.

        Comparison is positional over the already-normalized event tuples
        (xids, buffer ids and payload bytes were removed at normalization
        time); the reported kinds additionally drop per-run volatile fields
        via :func:`event_kind` so the result is stable under minimization.
        """

        limit = min(len(self.items), len(other.items))
        for index in range(limit):
            if self.items[index] != other.items[index]:
                return TraceDiff(
                    index=index,
                    kind_a=event_kind(self.items[index]),
                    kind_b=event_kind(other.items[index]),
                    len_a=len(self.items),
                    len_b=len(other.items),
                )
        if len(self.items) != len(other.items):
            longer_a = len(self.items) > limit
            item = self.items[limit] if longer_a else other.items[limit]
            return TraceDiff(
                index=limit,
                kind_a=event_kind(item) if longer_a else None,
                kind_b=None if longer_a else event_kind(item),
                len_a=len(self.items),
                len_b=len(other.items),
            )
        return TraceDiff(index=-1, kind_a=None, kind_b=None,
                         len_a=len(self.items), len_b=len(other.items))

    def describe(self) -> str:
        """Multi-line human readable rendering for reports."""

        if not self.items:
            return "(no observable output)"
        return "\n".join("  %d. %s" % (index + 1, " ".join(str(part) for part in item))
                         for index, item in enumerate(self.items))

    def short(self, limit: int = 3) -> str:
        """Single-line rendering used in tables and logs."""

        rendered = ["/".join(str(part) for part in item) for item in self.items[:limit]]
        suffix = " ..." if len(self.items) > limit else ""
        return "[" + "; ".join(rendered) + suffix + "]" if rendered else "[empty]"
