"""Phase 2a: group path conditions by identical output result.

This is the paper's *group* tool (§4.2): it reads the per-path records of one
agent, identifies the distinct normalized output traces, and builds — for each
distinct trace ``r`` — the disjunction ``C(r)`` of all path conditions that
produced it.  To keep the later solver queries shallow, the disjunction is
assembled as a balanced binary tree of ``or`` nodes, the same optimization the
original tool applies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.explorer import AgentExplorationReport, PathOutcome
from repro.core.trace import OutputTrace
from repro.errors import PipelineError
from repro.symbex.expr import BoolExpr, bool_and, bool_or

__all__ = ["OutputGroup", "GroupedResults", "group_paths", "balanced_or"]


def balanced_or(terms: Sequence[BoolExpr]) -> BoolExpr:
    """Combine *terms* with ``or`` as a balanced tree (minimizes nesting depth)."""

    terms = list(terms)
    if not terms:
        raise PipelineError("cannot build a disjunction over zero terms")
    while len(terms) > 1:
        paired: List[BoolExpr] = []
        for index in range(0, len(terms) - 1, 2):
            paired.append(bool_or(terms[index], terms[index + 1]))
        if len(terms) % 2:
            paired.append(terms[-1])
        terms = paired
    return terms[0]


@dataclass
class OutputGroup:
    """All paths of one agent that produced the same normalized output."""

    trace: OutputTrace
    condition: BoolExpr
    path_ids: List[int] = field(default_factory=list)
    path_count: int = 0

    def describe(self) -> str:
        return "%d path(s) -> %s" % (self.path_count, self.trace.short())


@dataclass
class GroupedResults:
    """The grouped intermediate result of one (agent, test) exploration."""

    agent_name: str
    test_key: str
    groups: List[OutputGroup]
    grouping_time: float
    total_paths: int

    @property
    def distinct_output_count(self) -> int:
        return len(self.groups)

    def group_for(self, trace: OutputTrace) -> Optional[OutputGroup]:
        for group in self.groups:
            if group.trace == trace:
                return group
        return None

    def traces(self) -> List[OutputTrace]:
        return [group.trace for group in self.groups]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering of the grouped intermediate result."""

        from repro.symbex.serialize import expr_to_obj

        return {
            "agent": self.agent_name,
            "test": self.test_key,
            "grouping_time": self.grouping_time,
            "total_paths": self.total_paths,
            "groups": [
                {
                    "trace": group.trace.to_obj(),
                    "condition": expr_to_obj(group.condition),
                    "path_ids": list(group.path_ids),
                    "path_count": group.path_count,
                }
                for group in self.groups
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GroupedResults":
        """Rebuild grouped results serialized with :meth:`to_dict`."""

        from repro.symbex.serialize import bool_expr_from_obj

        groups = [
            OutputGroup(
                trace=OutputTrace.from_obj(g["trace"]),
                condition=bool_expr_from_obj(g["condition"]),
                path_ids=[int(p) for p in g.get("path_ids", [])],
                path_count=int(g.get("path_count", 0)),
            )
            for g in data.get("groups", [])
        ]
        return cls(
            agent_name=str(data["agent"]),
            test_key=str(data["test"]),
            groups=groups,
            grouping_time=float(data.get("grouping_time", 0.0)),
            total_paths=int(data.get("total_paths", 0)),
        )


def group_paths(report: AgentExplorationReport,
                include_failed_paths: bool = False) -> GroupedResults:
    """Group an exploration report's paths by their normalized output trace."""

    started = time.perf_counter()
    buckets: Dict[OutputTrace, List[PathOutcome]] = {}
    for outcome in report.outcomes:
        if not include_failed_paths and not outcome.ok:
            continue
        buckets.setdefault(outcome.trace, []).append(outcome)

    groups: List[OutputGroup] = []
    for trace, outcomes in buckets.items():
        conjunctions = [bool_and(True, *outcome.constraints) for outcome in outcomes]
        condition = balanced_or(conjunctions)
        groups.append(OutputGroup(
            trace=trace,
            condition=condition,
            path_ids=[o.path_id for o in outcomes],
            path_count=len(outcomes),
        ))

    # Deterministic ordering: largest groups first, ties broken by trace text.
    groups.sort(key=lambda g: (-g.path_count, str(g.trace.items)))
    elapsed = time.perf_counter() - started
    return GroupedResults(
        agent_name=report.agent_name,
        test_key=report.test_key,
        groups=groups,
        grouping_time=elapsed,
        total_paths=sum(g.path_count for g in groups),
    )
