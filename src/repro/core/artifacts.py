"""Saved Phase-1 artifacts: the paper's vendor exchange format (§2.4).

A vendor runs Phase 1 (symbolic exploration) in-house, saves the resulting
:class:`~repro.core.explorer.AgentExplorationReport` to a JSON file, and ships
that file — path conditions plus normalized output traces, no source code —
to the crosschecking party.  The crosschecking party loads any number of such
artifacts into a :class:`~repro.core.campaign.Campaign` and runs Phase 2
without re-exploring anything.

File layout::

    {
      "format": "soft/exploration-artifact/v1",
      "agent": "...", "test": "...",
      "outcomes": [ {"constraints": [...], "trace": [...], ...}, ... ],
      ...
    }
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Union

from repro.core.explorer import AgentExplorationReport
from repro.core.witness import Witness
from repro.errors import ArtifactError

__all__ = [
    "save_exploration_artifact",
    "load_exploration_artifact",
    "load_exploration_artifacts",
    "save_witness_bundle",
    "load_witness_bundle",
    "load_witness_bundles",
]

PathLike = Union[str, "os.PathLike[str]"]


def save_exploration_artifact(report: AgentExplorationReport, path: PathLike,
                              indent: int = 2) -> Dict[str, object]:
    """Write *report* to *path* as JSON; returns the serialized dict."""

    data = report.to_dict()
    try:
        with open(path, "w") as handle:
            json.dump(data, handle, indent=indent)
            handle.write("\n")
    except OSError as exc:
        raise ArtifactError("cannot write artifact %s: %s" % (path, exc))
    return data


def load_exploration_artifact(path: PathLike) -> AgentExplorationReport:
    """Load one Phase-1 artifact saved by :func:`save_exploration_artifact`."""

    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ArtifactError("cannot read artifact %s: %s" % (path, exc))
    except ValueError as exc:
        raise ArtifactError("artifact %s is not valid JSON: %s" % (path, exc))
    return AgentExplorationReport.from_dict(data)


def load_exploration_artifacts(paths: Sequence[PathLike]) -> List[AgentExplorationReport]:
    """Load several artifacts, preserving order."""

    return [load_exploration_artifact(path) for path in paths]


def save_witness_bundle(witness: Witness, path: PathLike,
                        indent: int = 2) -> Dict[str, object]:
    """Write one witness bundle (triage output) to *path* as JSON.

    The bundle is the persistent-corpus exchange format: concrete inputs,
    both expected replay traces, the divergence signature and the solver
    model, replayable later without any solver involvement.
    """

    data = witness.to_dict()
    try:
        with open(path, "w") as handle:
            json.dump(data, handle, indent=indent)
            handle.write("\n")
    except OSError as exc:
        raise ArtifactError("cannot write witness bundle %s: %s" % (path, exc))
    return data


def load_witness_bundle(path: PathLike) -> Witness:
    """Load one witness bundle saved by :func:`save_witness_bundle`."""

    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ArtifactError("cannot read witness bundle %s: %s" % (path, exc))
    except ValueError as exc:
        raise ArtifactError("witness bundle %s is not valid JSON: %s" % (path, exc))
    return Witness.from_dict(data)


def load_witness_bundles(paths: Sequence[PathLike]) -> List[Witness]:
    """Load several witness bundles, preserving order."""

    return [load_witness_bundle(path) for path in paths]
