"""Campaign checkpoints: a resumable on-disk journal of terminal cells.

A checkpointed campaign appends one JSONL record to ``jobs.jsonl`` every
time a cell (Phase-1 unit, crosscheck pair, hybrid hunt) reaches a
terminal state, alongside the cell's payload when it succeeded:

* ``meta.json`` — the format tag plus a *fingerprint* of the campaign
  configuration (tests, agents, pairs, strategy, mode).  Resuming into a
  differently-shaped campaign is refused loudly rather than silently
  mixing incompatible cells.
* ``jobs.jsonl`` — append-only journal, one record per terminal job:
  ``{"cell": [...], "state": ..., "attempts": ..., "error": ...}``.
  Last record per cell wins, so a re-run of a previously failed cell
  simply appends its new outcome.  A truncated final line (the process
  died mid-append) is tolerated and ignored.
* ``artifacts/`` — one Phase-1 exploration artifact per ``ok`` phase-1
  cell, in the standard vendor-exchange format
  (:mod:`repro.core.artifacts`), so checkpoints double as artifact dirs.
* ``pairs/`` / ``hunts/`` — per-cell payloads for ``ok`` crosscheck
  pairs and hybrid hunts: everything the campaign report needs, without
  re-running Phase 2.

Resume semantics: only cells whose *last* recorded state is ``ok`` are
skipped — failed/timed-out/crashed cells get a fresh retry budget on
resume (the whole point of resuming is usually that the environmental
cause of the failure is gone).
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.artifacts import load_exploration_artifact, save_exploration_artifact
from repro.core.crosscheck import CrosscheckReport, Inconsistency
from repro.core.explorer import AgentExplorationReport
from repro.core.soft import SoftReport
from repro.core.tests_catalog import TestSpec
from repro.core.trace import OutputTrace
from repro.core.witness import Witness
from repro.errors import ArtifactError, CheckpointError, ReproError
from repro.symbex.serialize import bool_expr_from_obj, expr_to_obj

__all__ = ["CampaignCheckpoint", "CHECKPOINT_FORMAT", "PAIR_CELL_FORMAT",
           "HUNT_CELL_FORMAT"]

CHECKPOINT_FORMAT = "soft/campaign-checkpoint/v1"
PAIR_CELL_FORMAT = "soft/pair-cell/v1"
HUNT_CELL_FORMAT = "soft/hunt-cell/v1"

Cell = Tuple[str, ...]


def _slug(text: str) -> str:
    """Filesystem-safe rendering of one cell-key component."""

    return re.sub(r"[^A-Za-z0-9._-]+", "_", text) or "_"


class _RestoredReplay:
    """Duck-typed stand-in for a checkpointed pair's replay outcomes.

    The campaign report only ever asks a restored replay whether it
    ``diverged``; the full traces live on the restored witnesses.
    """

    __slots__ = ("diverged",)

    def __init__(self, diverged: bool) -> None:
        self.diverged = bool(diverged)


class CampaignCheckpoint:
    """One checkpoint directory: journal, meta fingerprint and payloads."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._journal = os.path.join(directory, "jobs.jsonl")
        self._meta = os.path.join(directory, "meta.json")

    # ------------------------------------------------------------------
    # Opening / fingerprinting
    # ------------------------------------------------------------------

    def open(self, fingerprint: Dict[str, object], resume: bool) -> None:
        """Prepare the directory for a run; validate meta and resume intent.

        A fresh (non-resume) run into a directory that already holds
        journal records is refused — overwriting a half-finished campaign
        silently is exactly the data loss checkpoints exist to prevent.
        """

        try:
            os.makedirs(self.directory, exist_ok=True)
            os.makedirs(os.path.join(self.directory, "artifacts"), exist_ok=True)
            os.makedirs(os.path.join(self.directory, "pairs"), exist_ok=True)
            os.makedirs(os.path.join(self.directory, "hunts"), exist_ok=True)
        except OSError as exc:
            raise CheckpointError("cannot create checkpoint directory %s: %s"
                                  % (self.directory, exc))
        existing = self._load_meta()
        has_records = bool(self.records())
        if resume:
            if existing is None:
                if has_records:
                    raise CheckpointError(
                        "checkpoint %s has journal records but no meta.json; "
                        "refusing to resume from a corrupt checkpoint"
                        % self.directory)
                # Resuming into an empty directory degenerates to a fresh run.
            elif existing.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    "checkpoint %s was written by a differently-configured "
                    "campaign and cannot be resumed into this one\n"
                    "  checkpoint: %s\n  this run:   %s"
                    % (self.directory,
                       json.dumps(existing.get("fingerprint"), sort_keys=True),
                       json.dumps(fingerprint, sort_keys=True)))
        elif has_records:
            raise CheckpointError(
                "checkpoint %s already contains journal records; pass "
                "resume=True (soft campaign --resume) to continue it, or "
                "point --checkpoint at a fresh directory" % self.directory)
        try:
            with open(self._meta, "w") as handle:
                json.dump({"format": CHECKPOINT_FORMAT,
                           "fingerprint": fingerprint}, handle, indent=2)
                handle.write("\n")
        except OSError as exc:
            raise CheckpointError("cannot write checkpoint meta %s: %s"
                                  % (self._meta, exc))

    def _load_meta(self) -> Optional[Dict[str, object]]:
        if not os.path.exists(self._meta):
            return None
        try:
            with open(self._meta) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError("cannot read checkpoint meta %s: %s"
                                  % (self._meta, exc))
        if data.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                "unsupported checkpoint format %r in %s (expected %r)"
                % (data.get("format"), self._meta, CHECKPOINT_FORMAT))
        return data

    @staticmethod
    def fingerprint_for(specs: Sequence[TestSpec], agents: Sequence[str],
                        pairs: Sequence[Tuple[str, str]], strategy: Optional[str],
                        incremental: bool, hybrid: bool) -> Dict[str, object]:
        """The campaign-shape fingerprint recorded in ``meta.json``."""

        return {
            "tests": [[spec.key, spec.scale] for spec in specs],
            "agents": sorted(agents),
            "pairs": sorted([sorted(pair) for pair in pairs]),
            "strategy": strategy,
            "incremental": bool(incremental),
            "hybrid": bool(hybrid),
        }

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------

    def records(self) -> List[Dict[str, object]]:
        """Every journal record, oldest first; a truncated tail is dropped."""

        if not os.path.exists(self._journal):
            return []
        try:
            with open(self._journal) as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            raise CheckpointError("cannot read checkpoint journal %s: %s"
                                  % (self._journal, exc))
        records: List[Dict[str, object]] = []
        nonempty = [line for line in lines if line.strip()]
        for index, line in enumerate(nonempty):
            try:
                record = json.loads(line)
            except ValueError:
                if index == len(nonempty) - 1:
                    # The process died mid-append; the cell will simply re-run.
                    continue
                raise CheckpointError(
                    "checkpoint journal %s line %d is not valid JSON"
                    % (self._journal, index + 1))
            if isinstance(record, dict):
                records.append(record)
        return records

    def terminal_cells(self) -> Dict[Cell, Dict[str, object]]:
        """Last recorded state per cell (last record wins)."""

        cells: Dict[Cell, Dict[str, object]] = {}
        for record in self.records():
            cell = record.get("cell")
            if isinstance(cell, list) and cell:
                cells[tuple(str(part) for part in cell)] = record
        return cells

    def completed_cells(self) -> Dict[Cell, Dict[str, object]]:
        """Cells whose last recorded state is ``ok`` — the ones resume skips."""

        return {cell: record for cell, record in self.terminal_cells().items()
                if record.get("state") == "ok"}

    def append(self, record: Dict[str, object]) -> None:
        try:
            with open(self._journal, "a") as handle:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
                handle.flush()
        except OSError as exc:
            raise CheckpointError("cannot append to checkpoint journal %s: %s"
                                  % (self._journal, exc))

    # ------------------------------------------------------------------
    # Cell keys and payload paths
    # ------------------------------------------------------------------

    @staticmethod
    def phase1_cell(agent: str, spec: TestSpec) -> Cell:
        return ("phase1", agent, spec.key, spec.scale)

    @staticmethod
    def pair_cell(spec: TestSpec, agent_a: str, agent_b: str) -> Cell:
        return ("pair", spec.key, spec.scale, agent_a, agent_b)

    @staticmethod
    def hunt_cell(spec: TestSpec, agent_a: str, agent_b: str) -> Cell:
        return ("hunt", spec.key, spec.scale, agent_a, agent_b)

    def _phase1_path(self, agent: str, spec: TestSpec) -> str:
        return os.path.join(self.directory, "artifacts", "phase1-%s-%s-%s.json"
                            % (_slug(agent), _slug(spec.key), _slug(spec.scale)))

    def _pair_path(self, spec: TestSpec, agent_a: str, agent_b: str) -> str:
        return os.path.join(self.directory, "pairs", "pair-%s-%s-%s-vs-%s.json"
                            % (_slug(spec.key), _slug(spec.scale),
                               _slug(agent_a), _slug(agent_b)))

    def _hunt_path(self, spec: TestSpec, agent_a: str, agent_b: str) -> str:
        return os.path.join(self.directory, "hunts", "hunt-%s-%s-%s-vs-%s.json"
                            % (_slug(spec.key), _slug(spec.scale),
                               _slug(agent_a), _slug(agent_b)))

    # ------------------------------------------------------------------
    # Phase-1 payloads (standard exploration artifacts)
    # ------------------------------------------------------------------

    def save_phase1(self, report: AgentExplorationReport, spec: TestSpec) -> None:
        try:
            save_exploration_artifact(report, self._phase1_path(report.agent_name, spec))
        except ArtifactError as exc:
            raise CheckpointError(str(exc))

    def load_phase1(self, agent: str, spec: TestSpec) -> AgentExplorationReport:
        try:
            return load_exploration_artifact(self._phase1_path(agent, spec))
        except (ArtifactError, ReproError) as exc:
            raise CheckpointError(
                "checkpointed phase-1 artifact for %s on %s is unusable: %s"
                % (agent, spec.key, exc))

    def has_phase1(self, agent: str, spec: TestSpec) -> bool:
        return os.path.exists(self._phase1_path(agent, spec))

    # ------------------------------------------------------------------
    # Pair payloads
    # ------------------------------------------------------------------

    def save_pair(self, spec: TestSpec, report: SoftReport) -> None:
        crosscheck = report.crosscheck
        payload = {
            "format": PAIR_CELL_FORMAT,
            "test": spec.key,
            "scale": spec.scale,
            "agent_a": report.agent_a,
            "agent_b": report.agent_b,
            "crosscheck": {
                "queries": crosscheck.queries,
                "unsat_pairs": crosscheck.unsat_pairs,
                "unknown_pairs": crosscheck.unknown_pairs,
                "checking_time": crosscheck.checking_time,
                "identical_output_pairs": crosscheck.identical_output_pairs,
                "truncated": crosscheck.truncated,
                "solver_stats": _json_safe(crosscheck.solver_stats),
                "inconsistencies": [
                    {
                        "trace_a": inc.trace_a.to_obj(),
                        "trace_b": inc.trace_b.to_obj(),
                        "condition": expr_to_obj(inc.condition),
                        "example": {str(k): int(v) for k, v in inc.example.items()},
                        "solver_time": inc.solver_time,
                    }
                    for inc in crosscheck.inconsistencies
                ],
            },
            "replays_diverged": [bool(replay.diverged) for replay in report.replays],
            "witnesses": [witness.to_dict() for witness in report.witnesses],
            "total_time": report.total_time,
        }
        path = self._pair_path(spec, report.agent_a, report.agent_b)
        try:
            with open(path, "w") as handle:
                json.dump(payload, handle)
                handle.write("\n")
        except OSError as exc:
            raise CheckpointError("cannot write pair payload %s: %s" % (path, exc))

    def load_pair(self, spec: TestSpec, agent_a: str, agent_b: str,
                  entry_a, entry_b) -> SoftReport:
        """Rebuild one checkpointed pair report against cached explorations.

        *entry_a*/*entry_b* are the (restored) exploration-cache entries for
        the two agents; the pair payload only stores Phase-2 output.
        """

        path = self._pair_path(spec, agent_a, agent_b)
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError("cannot read pair payload %s: %s" % (path, exc))
        if data.get("format") != PAIR_CELL_FORMAT:
            raise CheckpointError("unsupported pair payload format %r in %s"
                                  % (data.get("format"), path))
        try:
            check = data["crosscheck"]
            inconsistencies = [
                Inconsistency(
                    agent_a=agent_a,
                    agent_b=agent_b,
                    trace_a=OutputTrace.from_obj(obj["trace_a"]),
                    trace_b=OutputTrace.from_obj(obj["trace_b"]),
                    condition=bool_expr_from_obj(obj["condition"]),
                    example={str(k): int(v) for k, v in obj.get("example", {}).items()},
                    solver_time=float(obj.get("solver_time", 0.0)),
                )
                for obj in check.get("inconsistencies", [])
            ]
            crosscheck = CrosscheckReport(
                agent_a=agent_a,
                agent_b=agent_b,
                test_key=spec.key,
                inconsistencies=inconsistencies,
                queries=int(check.get("queries", 0)),
                unsat_pairs=int(check.get("unsat_pairs", 0)),
                unknown_pairs=int(check.get("unknown_pairs", 0)),
                checking_time=float(check.get("checking_time", 0.0)),
                identical_output_pairs=int(check.get("identical_output_pairs", 0)),
                truncated=bool(check.get("truncated", False)),
                solver_stats=dict(check.get("solver_stats", {})),
            )
            witnesses = [Witness.from_dict(obj) for obj in data.get("witnesses", [])]
            replays = [_RestoredReplay(flag)
                       for flag in data.get("replays_diverged", [])]
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise CheckpointError("malformed pair payload %s: %s" % (path, exc))
        return SoftReport(
            test_key=spec.key,
            agent_a=agent_a,
            agent_b=agent_b,
            exploration_a=entry_a.report,
            exploration_b=entry_b.report,
            grouped_a=entry_a.grouped,
            grouped_b=entry_b.grouped,
            crosscheck=crosscheck,
            testcases=[],
            replays=replays,  # type: ignore[arg-type]
            witnesses=witnesses,
            total_time=float(data.get("total_time", 0.0)),
        )

    # ------------------------------------------------------------------
    # Hunt payloads (hybrid mode)
    # ------------------------------------------------------------------

    def save_hunt(self, spec: TestSpec, hunt) -> None:
        payload = {
            "format": HUNT_CELL_FORMAT,
            "test": spec.key,
            "scale": spec.scale,
            "agent_a": hunt.agent_a,
            "agent_b": hunt.agent_b,
            "stats": hunt.stats.as_dict(),
            "witnesses": [witness.to_dict() for witness in hunt.witnesses],
            "coverage": hunt.coverage,
            "corpus_saved": hunt.corpus_saved,
        }
        path = self._hunt_path(spec, hunt.agent_a, hunt.agent_b)
        try:
            with open(path, "w") as handle:
                json.dump(payload, handle)
                handle.write("\n")
        except OSError as exc:
            raise CheckpointError("cannot write hunt payload %s: %s" % (path, exc))

    def load_hunt(self, spec: TestSpec, agent_a: str, agent_b: str):
        from repro.core.witness import TriageIndex
        from repro.hybrid.scheduler import HuntReport, HybridStats

        path = self._hunt_path(spec, agent_a, agent_b)
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError("cannot read hunt payload %s: %s" % (path, exc))
        if data.get("format") != HUNT_CELL_FORMAT:
            raise CheckpointError("unsupported hunt payload format %r in %s"
                                  % (data.get("format"), path))
        try:
            witnesses = [Witness.from_dict(obj) for obj in data.get("witnesses", [])]
            stats = HybridStats.from_dict(data.get("stats", {}))
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise CheckpointError("malformed hunt payload %s: %s" % (path, exc))
        index = TriageIndex()
        index.add_all(witnesses)
        return HuntReport(
            test_key=spec.key,
            agent_a=agent_a,
            agent_b=agent_b,
            stats=stats,
            triage=index.report(triage_time=stats.wall_time),
            witnesses=witnesses,
            coverage=data.get("coverage"),
            corpus_saved=int(data.get("corpus_saved", 0)),
        )


def _json_safe(value):
    """Best-effort JSON projection of stats dicts (drops exotic values)."""

    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        pass
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)
