"""Concrete test cases: turn an inconsistency into a replayable input sequence.

Every inconsistency reported by the crosscheck stage carries a solver model —
an assignment of the symbolic message fields.  This module materializes that
model into concrete wire buffers (by evaluating every symbolic byte of the
test's messages under the model) and replays the sequence against both agents
concretely.  The replay both reproduces the divergence for a human and acts as
the "no false positives" guarantee: a test case whose replay does not diverge
is reported as a pipeline error rather than as an inconsistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.agents import make_agent
from repro.core.crosscheck import Inconsistency
from repro.core.tests_catalog import TestSpec, get_test
from repro.core.trace import OutputTrace
from repro.errors import ReplayMismatchError
from repro.harness.driver import ConcreteRunResult, run_concrete_sequence
from repro.harness.inputs import ControlMessageInput, ProbeInput
from repro.symbex.expr import BVExpr
from repro.symbex.simplify import evaluate_bv
from repro.symbex.state import PathState
from repro.wire.buffer import SymBuffer

__all__ = ["ConcreteTestCase", "build_testcase", "replay_testcase", "ReplayOutcome"]


def _concretize_buffer(buf: SymBuffer, model: Dict[str, int]) -> SymBuffer:
    """Evaluate every symbolic byte of *buf* under *model* (unbound vars -> 0)."""

    concrete = SymBuffer()
    for byte in buf:
        if isinstance(byte, int):
            concrete.write_u8(byte)
        else:
            concrete.write_u8(evaluate_bv(byte, model, default=0) & 0xFF)
    return concrete


@dataclass
class ConcreteTestCase:
    """A fully concrete input sequence reproducing one inconsistency."""

    test_key: str
    assignment: Dict[str, int]
    inputs: List[Tuple[str, object]]
    inconsistency: Optional[Inconsistency] = None

    def describe(self) -> str:
        lines = ["concrete test case for %r" % self.test_key]
        for name, value in sorted(self.assignment.items()):
            lines.append("  %s = 0x%x" % (name, value))
        for index, (kind, payload) in enumerate(self.inputs):
            if kind == "control":
                lines.append("  input %d: control message %s" % (index, payload.hex()))
            else:
                port, frame = payload
                lines.append("  input %d: probe on port %s (%d bytes)" % (index, port, len(frame)))
        return "\n".join(lines)


def build_testcase(test: Union[str, TestSpec], assignment: Dict[str, int],
                   inconsistency: Optional[Inconsistency] = None) -> ConcreteTestCase:
    """Materialize the test's input sequence under a concrete assignment."""

    spec = get_test(test) if isinstance(test, str) else test
    state = PathState(path_id=-1)
    inputs: List[Tuple[str, object]] = []
    for test_input in spec.inputs:
        if isinstance(test_input, ControlMessageInput):
            symbolic_buf = test_input.build(state)
            inputs.append(("control", _concretize_buffer(symbolic_buf, assignment)))
        elif isinstance(test_input, ProbeInput):
            port, frame = test_input.build(state)
            if isinstance(port, BVExpr):
                port = evaluate_bv(port, assignment, default=0)
            inputs.append(("probe", (port, _concretize_buffer(frame, assignment))))
    return ConcreteTestCase(
        test_key=spec.key,
        assignment=dict(assignment),
        inputs=inputs,
        inconsistency=inconsistency,
    )


@dataclass
class ReplayOutcome:
    """Result of replaying a concrete test case against two agents."""

    testcase: ConcreteTestCase
    run_a: ConcreteRunResult
    run_b: ConcreteRunResult

    @property
    def diverged(self) -> bool:
        return self.run_a.trace != self.run_b.trace

    def describe(self) -> str:
        return "\n".join([
            "replay of %s" % self.testcase.test_key,
            "  %s: %s" % (self.run_a.agent_name, self.run_a.trace.short(limit=5)),
            "  %s: %s" % (self.run_b.agent_name, self.run_b.trace.short(limit=5)),
            "  diverged: %s" % self.diverged,
        ])


def replay_testcase(testcase: ConcreteTestCase, agent_a: str, agent_b: str,
                    require_divergence: bool = False) -> ReplayOutcome:
    """Replay a concrete test case against two agents and compare their traces.

    The replay is fully concrete (no symbolic execution involved), so it is an
    independent confirmation that the generated input actually drives the two
    implementations apart.  When *require_divergence* is set, identical traces
    raise :class:`ReplayMismatchError`.
    """

    run_a = run_concrete_sequence(make_agent(agent_a), testcase.inputs)
    run_b = run_concrete_sequence(make_agent(agent_b), testcase.inputs)
    outcome = ReplayOutcome(testcase=testcase, run_a=run_a, run_b=run_b)
    if require_divergence and not outcome.diverged:
        raise ReplayMismatchError(
            "replay of the generated test case did not reproduce a divergence "
            "between %s and %s" % (agent_a, agent_b)
        )
    return outcome
