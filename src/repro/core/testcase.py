"""Concrete test cases: turn an inconsistency into a replayable input sequence.

Every inconsistency reported by the crosscheck stage carries a solver model —
an assignment of the symbolic message fields.  This module materializes that
model into concrete wire buffers (by evaluating every symbolic byte of the
test's messages under the model) and replays the sequence against both agents
concretely.  The replay both reproduces the divergence for a human and acts as
the "no false positives" guarantee: a test case whose replay does not diverge
is reported as a pipeline error rather than as an inconsistency.

Variables the solver left unbound are zero-filled during materialization, but
never silently: their names are recorded on the resulting
:class:`ConcreteTestCase` (``unbound_variables``) and surfaced by
:meth:`ReplayOutcome.describe`, so a replay that hinges on a default value is
visible as such.  The witness-minimization stage relies on the same mechanism:
dropping a variable from the assignment *is* zero-filling it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.agents import make_agent
from repro.agents.common.base import OpenFlowAgent
from repro.core.crosscheck import Inconsistency
from repro.core.tests_catalog import TestSpec, get_test
from repro.core.trace import OutputTrace
from repro.errors import ReplayMismatchError
from repro.harness.driver import ConcreteRunResult, run_concrete_sequence
from repro.harness.inputs import ControlMessageInput, ProbeInput
from repro.symbex.compile import compile_term
from repro.symbex.expr import BVExpr
from repro.symbex.state import PathState
from repro.wire.buffer import SymBuffer

__all__ = ["ConcreteTestCase", "build_testcase", "replay_testcase",
           "ReplayOutcome", "AgentFactory", "resolve_agent_factory"]

#: Resolves an agent name to a fresh agent instance (replay needs one per run).
AgentFactory = Callable[[str], OpenFlowAgent]


def resolve_agent_factory(agent_factory: Optional[AgentFactory] = None,
                          agent_options: Optional[Dict[str, Dict[str, object]]] = None,
                          ) -> AgentFactory:
    """Build the agent factory used for concrete replay.

    *agent_factory* wins when given (a callable ``name -> agent``); otherwise
    agents are created through the registry, passing the per-agent keyword
    arguments from *agent_options* (``{"ovs": {"config": AgentConfig(...)}}``)
    so a replay can reuse the exact agent configuration of its campaign.
    """

    if agent_factory is not None:
        return agent_factory
    options = dict(agent_options or {})

    def factory(name: str) -> OpenFlowAgent:
        return make_agent(name, **options.get(name, {}))

    return factory


def _concretize_buffer(buf: SymBuffer, model: Dict[str, int],
                       unbound: Set[str]) -> SymBuffer:
    """Evaluate every symbolic byte of *buf* under *model* (unbound vars -> 0).

    Names of variables that had to fall back to the zero default are added to
    *unbound* rather than silently masked.
    """

    concrete = SymBuffer()
    for byte in buf:
        if isinstance(byte, int):
            concrete.write_u8(byte)
        else:
            # Symbolic bytes over a shared message template compile to the
            # same handful of cached programs; the program's precomputed
            # variable list replaces a per-byte tree walk.
            program = compile_term(byte)
            for name in program.variables:
                if name not in model:
                    unbound.add(name)
            concrete.write_u8(program.run(model, default=0) & 0xFF)
    return concrete


@dataclass
class ConcreteTestCase:
    """A fully concrete input sequence reproducing one inconsistency."""

    test_key: str
    assignment: Dict[str, int]
    inputs: List[Tuple[str, object]]
    inconsistency: Optional[Inconsistency] = None
    #: Variables that appeared in the symbolic inputs but were not bound by
    #: the assignment; their bytes were zero-filled during materialization.
    unbound_variables: List[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = ["concrete test case for %r" % self.test_key]
        for name, value in sorted(self.assignment.items()):
            lines.append("  %s = 0x%x" % (name, value))
        if self.unbound_variables:
            lines.append("  unbound (zero-filled): %s"
                         % ", ".join(self.unbound_variables))
        for index, (kind, payload) in enumerate(self.inputs):
            if kind == "control":
                lines.append("  input %d: control message %s" % (index, payload.hex()))
            else:
                port, frame = payload
                lines.append("  input %d: probe on port %s (%d bytes)" % (index, port, len(frame)))
        return "\n".join(lines)


def build_testcase(test: Union[str, TestSpec], assignment: Dict[str, int],
                   inconsistency: Optional[Inconsistency] = None,
                   max_inputs: Optional[int] = None) -> ConcreteTestCase:
    """Materialize the test's input sequence under a concrete assignment.

    *max_inputs* truncates the materialized sequence after that many inputs —
    the knob witness minimization turns to drop trailing inputs.
    """

    spec = get_test(test) if isinstance(test, str) else test
    state = PathState(path_id=-1)
    inputs: List[Tuple[str, object]] = []
    unbound: Set[str] = set()
    spec_inputs = spec.inputs if max_inputs is None else spec.inputs[:max_inputs]
    for test_input in spec_inputs:
        if isinstance(test_input, ControlMessageInput):
            symbolic_buf = test_input.build(state)
            inputs.append(("control", _concretize_buffer(symbolic_buf, assignment, unbound)))
        elif isinstance(test_input, ProbeInput):
            port, frame = test_input.build(state)
            if isinstance(port, BVExpr):
                program = compile_term(port)
                for name in program.variables:
                    if name not in assignment:
                        unbound.add(name)
                port = program.run(assignment, default=0)
            inputs.append(("probe", (port, _concretize_buffer(frame, assignment, unbound))))
    return ConcreteTestCase(
        test_key=spec.key,
        assignment=dict(assignment),
        inputs=inputs,
        inconsistency=inconsistency,
        unbound_variables=sorted(unbound),
    )


@dataclass
class ReplayOutcome:
    """Result of replaying a concrete test case against two agents."""

    testcase: ConcreteTestCase
    run_a: ConcreteRunResult
    run_b: ConcreteRunResult

    @property
    def diverged(self) -> bool:
        return self.run_a.trace != self.run_b.trace

    def diff(self):
        """First-divergence diff of the two replay traces (a TraceDiff)."""

        return self.run_a.trace.diff(self.run_b.trace)

    def describe(self) -> str:
        lines = [
            "replay of %s" % self.testcase.test_key,
            "  %s: %s%s" % (self.run_a.agent_name, self.run_a.trace.short(limit=5),
                            " (crashed)" if self.run_a.crashed else ""),
            "  %s: %s%s" % (self.run_b.agent_name, self.run_b.trace.short(limit=5),
                            " (crashed)" if self.run_b.crashed else ""),
            "  diverged: %s" % self.diverged,
        ]
        if self.testcase.unbound_variables:
            lines.append("  unbound variables zero-filled: %s"
                         % ", ".join(self.testcase.unbound_variables))
        return "\n".join(lines)


def replay_testcase(testcase: ConcreteTestCase, agent_a: str, agent_b: str,
                    require_divergence: bool = False,
                    agent_factory: Optional[AgentFactory] = None,
                    agent_options: Optional[Dict[str, Dict[str, object]]] = None,
                    ) -> ReplayOutcome:
    """Replay a concrete test case against two agents and compare their traces.

    The replay is fully concrete (no symbolic execution involved), so it is an
    independent confirmation that the generated input actually drives the two
    implementations apart.  When *require_divergence* is set, identical traces
    raise :class:`ReplayMismatchError`.

    Agents are instantiated through *agent_factory* (``name -> agent``) when
    given, otherwise through the registry with the per-agent keyword arguments
    in *agent_options* — this is how a campaign's agent configuration reaches
    the replay stage.
    """

    factory = resolve_agent_factory(agent_factory, agent_options)
    run_a = run_concrete_sequence(factory(agent_a), testcase.inputs)
    run_b = run_concrete_sequence(factory(agent_b), testcase.inputs)
    outcome = ReplayOutcome(testcase=testcase, run_a=run_a, run_b=run_b)
    if require_divergence and not outcome.diverged:
        raise ReplayMismatchError(
            "replay of the generated test case did not reproduce a divergence "
            "between %s and %s" % (agent_a, agent_b)
        )
    return outcome
