"""Parameterized test-specification variants for Figure 4 and Table 5.

* :func:`flow_mod_sequence_spec` — Flow Mod sequences with 1, 2 or 3 symbolic
  messages, used to regenerate Figure 4 (coverage as a function of the number
  of symbolic messages).
* :func:`concretization_spec` — the five Table-5 variants that quantify the
  cost/benefit of concretizing the match, the actions, or the probe.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.tests_catalog import (
    PROBE_IN_PORT,
    PROBE_TP_DST,
    PROBE_TP_SRC,
    TestSpec,
    _flow_mod_match,
    _symbolic_wildcards,
    _tcp_probe,
)
from repro.harness.inputs import ControlMessageInput, ProbeInput, TestInput
from repro.openflow import constants as c
from repro.openflow.actions import ActionOutput, RawAction
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod
from repro.packetlib.builder import build_tcp_packet
from repro.symbex.state import PathState
from repro.wire.buffer import SymBuffer

__all__ = ["flow_mod_sequence_spec", "concretization_spec", "TABLE5_VARIANTS"]


def _sequence_flow_mod_builder(index: int):
    """A small symbolic Flow Mod used by the Figure-4 message sequences.

    Each message in the sequence uses its own symbolic variables; later
    messages interact with the flow-table state installed by earlier ones,
    which is exactly the cross-message interaction §3.2.2 describes.
    """

    def build(state: PathState) -> SymBuffer:
        prefix = "seq%d" % index
        command = state.new_symbol("%s.command" % prefix, 16)
        out_port = state.new_symbol("%s.out_port" % prefix, 16)
        state.assume(command <= 4)
        state.assume((out_port <= 4) | (out_port == c.OFPP_FLOOD)
                     | (out_port == c.OFPP_CONTROLLER))
        match = _flow_mod_match(
            state, "%s.match" % prefix, c.OFPFW_TP_DST, {"tp_dst": 16},
            concrete_overrides={
                "in_port": PROBE_IN_PORT, "dl_type": c.ETH_TYPE_IP,
                "nw_proto": c.IPPROTO_TCP, "dl_vlan": c.OFP_VLAN_NONE,
                "tp_src": PROBE_TP_SRC,
            },
        )
        message = FlowMod(
            xid=20 + index, match=match, command=command,
            priority=c.OFP_DEFAULT_PRIORITY + index, buffer_id=c.OFP_NO_BUFFER,
            out_port=c.OFPP_NONE, flags=0,
            actions=[ActionOutput(port=out_port, max_len=0)],
        )
        return message.pack()

    return build


def flow_mod_sequence_spec(message_count: int) -> TestSpec:
    """A Figure-4 sequence: *message_count* symbolic Flow Mods plus a TCP probe."""

    if not 1 <= message_count <= 3:
        raise ValueError("the paper evaluates 1..3 symbolic messages, got %d" % message_count)
    inputs: List[TestInput] = [
        ControlMessageInput("flow_mod_%d" % index, _sequence_flow_mod_builder(index))
        for index in range(message_count)
    ]
    inputs.append(ProbeInput("tcp_probe", _tcp_probe))
    return TestSpec(
        key="figure4_%dmsg" % message_count,
        title="Figure 4 (%d symbolic message%s)" % (message_count, "s" if message_count > 1 else ""),
        description="Flow Mod sequence with %d symbolic message(s) used to measure "
                    "coverage as a function of the number of symbolic messages." % message_count,
        inputs=inputs,
        message_count=message_count + 1,
    )


# ---------------------------------------------------------------------------
# Table 5: concretization variants
# ---------------------------------------------------------------------------

TABLE5_VARIANTS = (
    "fully_symbolic",
    "concrete_match",
    "concrete_action",
    "concrete_probe",
    "symbolic_probe",
)


def _table5_flow_mod_builder(symbolic_match: bool, symbolic_actions: bool):
    def build(state: PathState) -> SymBuffer:
        if symbolic_match:
            match = _flow_mod_match(
                state, "t5.match",
                c.OFPFW_IN_PORT | c.OFPFW_TP_DST,
                {"in_port": 16, "tp_dst": 16},
                concrete_overrides={
                    "dl_type": c.ETH_TYPE_IP, "nw_proto": c.IPPROTO_TCP,
                    "dl_vlan": c.OFP_VLAN_NONE, "tp_src": PROBE_TP_SRC,
                },
            )
        else:
            match = Match.wildcard_all()
        if symbolic_actions:
            action_type = state.new_symbol("t5.act.type", 16)
            action_arg = state.new_symbol("t5.act.arg", 16)
            out_port_a = state.new_symbol("t5.out_port_a", 16)
            out_port_b = state.new_symbol("t5.out_port_b", 16)
            state.assume((action_type <= 12) | (action_type == c.OFPAT_VENDOR))
            actions = [
                RawAction(action_type=action_type, length=8, arg16_a=action_arg, arg16_b=0),
                ActionOutput(port=out_port_a, max_len=64),
                ActionOutput(port=out_port_b, max_len=64),
            ]
        else:
            actions = [ActionOutput(port=2, max_len=64)]
        message = FlowMod(
            xid=30, match=match, command=c.OFPFC_ADD,
            priority=c.OFP_DEFAULT_PRIORITY, buffer_id=c.OFP_NO_BUFFER,
            out_port=c.OFPP_NONE, flags=0, actions=actions,
        )
        return message.pack()

    return build


def _symbolic_tcp_probe(state: PathState) -> Tuple[int, SymBuffer]:
    """A TCP probe whose transport ports are symbolic (Table 5 "Symbolic Probe")."""

    tp_src = state.new_symbol("probe.tp_src", 16)
    tp_dst = state.new_symbol("probe.tp_dst", 16)
    return PROBE_IN_PORT, build_tcp_packet(tp_src=tp_src, tp_dst=tp_dst)


def concretization_spec(variant: str) -> TestSpec:
    """One of the five Table-5 variants."""

    if variant not in TABLE5_VARIANTS:
        raise ValueError("unknown Table 5 variant %r; expected one of %s"
                         % (variant, ", ".join(TABLE5_VARIANTS)))

    if variant == "fully_symbolic":
        builder = _table5_flow_mod_builder(symbolic_match=True, symbolic_actions=True)
        probe: TestInput = ProbeInput("tcp_probe", _tcp_probe)
        description = "Symbolic Flow Mod with symbolic match and symbolic actions, TCP probe."
    elif variant == "concrete_match":
        builder = _table5_flow_mod_builder(symbolic_match=False, symbolic_actions=True)
        probe = ProbeInput("tcp_probe", _tcp_probe)
        description = "Symbolic Flow Mod whose match is concretized to a full wildcard."
    elif variant == "concrete_action":
        builder = _table5_flow_mod_builder(symbolic_match=True, symbolic_actions=False)
        probe = ProbeInput("tcp_probe", _tcp_probe)
        description = "Symbolic Flow Mod with a single concrete output action."
    elif variant == "concrete_probe":
        builder = _table5_flow_mod_builder(symbolic_match=True, symbolic_actions=False)
        probe = ProbeInput("tcp_probe", _tcp_probe)
        description = "Partially symbolic Flow Mod followed by a concrete probe."
    else:  # symbolic_probe
        builder = _table5_flow_mod_builder(symbolic_match=True, symbolic_actions=False)
        probe = ProbeInput("symbolic_tcp_probe", _symbolic_tcp_probe, symbolic=True)
        description = "Partially symbolic Flow Mod followed by a partially symbolic probe."

    return TestSpec(
        key="table5_%s" % variant,
        title="Table 5 (%s)" % variant.replace("_", " "),
        description=description,
        inputs=[ControlMessageInput("flow_mod", builder), probe],
        message_count=2,
    )
