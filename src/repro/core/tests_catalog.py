"""The catalogue of test specifications (Table 1 of the paper).

Each :class:`TestSpec` describes one input sequence: which OpenFlow control
messages are injected, which of their fields are symbolic, and which concrete
probe packets follow.  The structure of every message (type, length, number
and size of actions) is always concrete — the key scalability decision of
§3.2.1 — while selected field values are free symbolic variables.

Because a pure-Python symbolic executor explores paths much more slowly than
Cloud9 explores native code, every spec exists in two *scales*:

* ``small`` (default) — the same message shapes with slightly fewer symbolic
  fields, chosen so the full benchmark suite completes on a laptop in minutes.
* ``paper`` — the field selection closest to the paper's description; expect
  multi-minute runs for the Flow Mod family.

Select the scale with the ``SOFT_SCALE`` environment variable or by passing
``scale=`` to :func:`catalog` / :func:`get_test`.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.harness.inputs import ControlMessageInput, ProbeInput, TestInput
from repro.openflow import constants as c
from repro.openflow.actions import ActionOutput, RawAction
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierRequest,
    EchoRequest,
    FeaturesRequest,
    FlowMod,
    GetConfigRequest,
    PacketOut,
    SetConfig,
    StatsRequest,
)
from repro.packetlib.builder import build_ethernet_frame, build_tcp_packet
from repro.symbex.state import PathState
from repro.wire.buffer import SymBuffer

__all__ = ["TestSpec", "catalog", "get_test", "TABLE1_TESTS", "current_scale",
           "VALID_SCALES"]

#: The scale profiles a spec can be built at.
VALID_SCALES = ("small", "paper")

#: Probe constants shared by every spec so traces are comparable.
PROBE_IN_PORT = 1
PROBE_TP_DST = 80
PROBE_TP_SRC = 1234


def current_scale() -> str:
    """The active scale profile (``small`` unless ``SOFT_SCALE=paper``).

    Whitespace and case are normalized; any other mismatch (``SOFT_SCALE=large``)
    falls back to ``small`` with a :class:`RuntimeWarning` naming the valid
    scales, so a typo cannot silently benchmark the wrong profile.
    """

    raw = os.environ.get("SOFT_SCALE")
    if raw is None:
        return "small"
    scale = raw.strip().lower()
    if scale in VALID_SCALES:
        return scale
    warnings.warn(
        "SOFT_SCALE=%r is not a valid scale (valid: %s); falling back to 'small'"
        % (raw, ", ".join(VALID_SCALES)),
        RuntimeWarning, stacklevel=2)
    return "small"


@dataclass
class TestSpec:
    """One row of Table 1: a named input sequence."""

    key: str
    title: str
    description: str
    inputs: List[TestInput]
    #: Number of messages reported in Table 2 (symbolic messages plus probes).
    message_count: int
    scale: str = "small"

    def input_names(self) -> List[str]:
        return [i.name for i in self.inputs]


# ---------------------------------------------------------------------------
# Builder helpers
# ---------------------------------------------------------------------------


def _tcp_probe(state: PathState) -> Tuple[int, SymBuffer]:
    # The 100-byte payload makes the frame longer than typical miss_send_len
    # values, so PACKET_IN truncation behaviour becomes observable.
    return PROBE_IN_PORT, build_tcp_packet(tp_src=PROBE_TP_SRC, tp_dst=PROBE_TP_DST,
                                           payload=b"\x00" * 100)


def _eth_probe(state: PathState) -> Tuple[int, SymBuffer]:
    return PROBE_IN_PORT, build_ethernet_frame()


def _symbolic_wildcards(state: PathState, name: str, symbolic_bits: int) -> object:
    """A symbolic wildcards word whose non-interesting bits are forced to 'wildcarded'.

    The IP prefix sub-fields are always forced to "fully wildcarded" so that
    prefix-length arithmetic does not blow up the path count; the paper's
    Table 5 makes the same kind of concretization trade-off explicit.
    """

    wildcards = state.new_symbol(name, 32)
    forced_mask = c.OFPFW_ALL & ~symbolic_bits
    state.assume((wildcards & forced_mask) == (c.OFPFW_ALL & forced_mask))
    # Bits above OFPFW_ALL do not exist; force them to zero.
    state.assume((wildcards & ~c.OFPFW_ALL & 0xFFFFFFFF) == 0)
    return wildcards


# ---------------------------------------------------------------------------
# Table 1 test builders
# ---------------------------------------------------------------------------


def _build_packet_out(state: PathState) -> SymBuffer:
    scale = current_scale()
    buffer_id = state.new_symbol("po.buffer_id", 32)
    action_type = state.new_symbol("po.act.type", 16)
    action_arg = state.new_symbol("po.act.arg", 16)
    out_port = state.new_symbol("po.out_port", 16)
    if scale == "small":
        # Keep the symbolic action inside the defined action-type space plus
        # one representative undefined value; the paper's shapes allow any
        # 16-bit value, which multiplies runtime without changing behaviourally
        # distinct outcomes.
        state.assume((action_type <= 12) | (action_type == c.OFPAT_VENDOR))
    message = PacketOut(
        xid=1,
        buffer_id=buffer_id,
        in_port=c.OFPP_NONE,
        actions=[
            RawAction(action_type=action_type, length=8, arg16_a=action_arg, arg16_b=0),
            ActionOutput(port=out_port, max_len=128),
        ],
        data=build_tcp_packet(tp_src=PROBE_TP_SRC, tp_dst=PROBE_TP_DST).to_bytes(),
    )
    return message.pack()


def _build_stats_request(state: PathState) -> SymBuffer:
    stats_type = state.new_symbol("st.type", 16)
    body_port = state.new_symbol("st.port", 16)
    # The body is laid out so every statistics type finds a syntactically valid
    # request: a wildcard-all flow-stats body whose first 16 bits double as the
    # port number of port/queue statistics requests.
    body = SymBuffer()
    body.write_u16(body_port)
    body.write_u16(c.OFPFW_ALL & 0xFFFF)       # low half of the wildcards word
    match_rest = Match.wildcard_all().pack()
    body.write_bytes(match_rest[4:])            # remaining 36 bytes of the match
    body.write_u8(0xFF)                         # table_id: all tables
    body.pad(1)
    body.write_u16(c.OFPP_NONE)                 # out_port filter: none
    message = StatsRequest(xid=2, stats_type=stats_type, flags=0, stats_body=body)
    return message.pack()


def _build_set_config(state: PathState) -> SymBuffer:
    flags = state.new_symbol("sc.flags", 16)
    miss_send_len = state.new_symbol("sc.miss_send_len", 16)
    return SetConfig(xid=3, flags=flags, miss_send_len=miss_send_len).pack()


def _flow_mod_match(state: PathState, prefix: str, symbolic_bits: int,
                    symbolic_fields: Dict[str, int],
                    concrete_overrides: Optional[Dict[str, int]] = None) -> Match:
    """A match whose wildcards and selected fields are symbolic."""

    wildcards = _symbolic_wildcards(state, "%s.wildcards" % prefix, symbolic_bits)
    fields: Dict[str, object] = {"wildcards": wildcards}
    for name, width in symbolic_fields.items():
        fields[name] = state.new_symbol("%s.%s" % (prefix, name), width)
    if concrete_overrides:
        for name, value in concrete_overrides.items():
            fields.setdefault(name, value)
    return Match(**fields)


def _build_flow_mod(state: PathState) -> SymBuffer:
    scale = current_scale()
    command = state.new_symbol("fm.command", 16)
    flags = state.new_symbol("fm.flags", 16)
    buffer_id = state.new_symbol("fm.buffer_id", 32)
    out_port = state.new_symbol("fm.act.out_port", 16)
    if scale == "small":
        state.assume((flags & ~c.OFPFF_EMERG & 0xFFFF) == 0)
        state.assume(command <= 6)
        symbolic_bits = c.OFPFW_IN_PORT | c.OFPFW_TP_DST
        symbolic_fields = {"in_port": 16, "tp_dst": 16}
        actions: List[object] = [ActionOutput(port=out_port, max_len=128)]
    else:
        flags_mask = c.OFPFF_SEND_FLOW_REM | c.OFPFF_CHECK_OVERLAP | c.OFPFF_EMERG
        state.assume((flags & ~flags_mask & 0xFFFF) == 0)
        symbolic_bits = c.OFPFW_IN_PORT | c.OFPFW_TP_DST | c.OFPFW_NW_TOS
        symbolic_fields = {"in_port": 16, "tp_dst": 16, "nw_tos": 8}
        action_type = state.new_symbol("fm.act.type", 16)
        action_arg = state.new_symbol("fm.act.arg", 16)
        actions = [
            RawAction(action_type=action_type, length=8, arg16_a=action_arg, arg16_b=0),
            ActionOutput(port=out_port, max_len=128),
        ]
    match = _flow_mod_match(
        state, "fm.match", symbolic_bits, symbolic_fields,
        concrete_overrides={
            "dl_type": c.ETH_TYPE_IP, "nw_proto": c.IPPROTO_TCP,
            "dl_vlan": c.OFP_VLAN_NONE, "tp_src": PROBE_TP_SRC,
        },
    )
    idle_timeout = state.new_symbol("fm.idle_timeout", 16)
    if scale == "small":
        state.assume(idle_timeout <= 1)
    message = FlowMod(
        xid=4,
        match=match,
        command=command,
        idle_timeout=idle_timeout,
        hard_timeout=0,
        priority=c.OFP_DEFAULT_PRIORITY,
        buffer_id=buffer_id,
        out_port=c.OFPP_NONE,
        flags=flags,
        actions=actions,
    )
    return message.pack()


def _build_eth_flow_mod(state: PathState) -> SymBuffer:
    scale = current_scale()
    out_port = state.new_symbol("efm.act.out_port", 16)
    action_type = state.new_symbol("efm.act.type", 16)
    action_arg = state.new_symbol("efm.act.arg", 16)
    if scale == "small":
        state.assume((action_type <= 3) | (action_type == c.OFPAT_SET_NW_TOS)
                     | (action_type == 12))
        symbolic_bits = c.OFPFW_DL_DST
        symbolic_fields = {"dl_dst": 48}
    else:
        symbolic_bits = c.OFPFW_DL_SRC | c.OFPFW_DL_DST | c.OFPFW_DL_VLAN
        symbolic_fields = {"dl_src": 48, "dl_dst": 48, "dl_vlan": 16}
    match = _flow_mod_match(
        state, "efm.match", symbolic_bits, symbolic_fields,
        concrete_overrides={"in_port": PROBE_IN_PORT},
    )
    message = FlowMod(
        xid=5,
        match=match,
        command=c.OFPFC_ADD,
        idle_timeout=0,
        hard_timeout=0,
        priority=c.OFP_DEFAULT_PRIORITY,
        buffer_id=c.OFP_NO_BUFFER,
        out_port=c.OFPP_NONE,
        flags=0,
        actions=[
            RawAction(action_type=action_type, length=8, arg16_a=action_arg, arg16_b=0),
            ActionOutput(port=out_port, max_len=128),
        ],
    )
    return message.pack()


def _concrete_exact_flow_mod() -> SymBuffer:
    """The concrete first message of the CS FlowMods test."""

    match = Match.exact_tcp(
        in_port=PROBE_IN_PORT,
        dl_src=0x00163E000001, dl_dst=0x00163E000002,
        nw_src=0x0A000001, nw_dst=0x0A000002,
        tp_src=PROBE_TP_SRC, tp_dst=PROBE_TP_DST,
    )
    message = FlowMod(
        xid=6, match=match, command=c.OFPFC_ADD, priority=0x8000,
        buffer_id=c.OFP_NO_BUFFER, out_port=c.OFPP_NONE, flags=0,
        actions=[ActionOutput(port=2, max_len=0)],
    )
    return message.pack()


def _build_cs_first(state: PathState) -> SymBuffer:
    return _concrete_exact_flow_mod()


def _build_cs_second(state: PathState) -> SymBuffer:
    scale = current_scale()
    command = state.new_symbol("cs.command", 16)
    out_port_filter = state.new_symbol("cs.out_port", 16)
    flags = state.new_symbol("cs.flags", 16)
    action_port = state.new_symbol("cs.act.port", 16)
    buffer_id = state.new_symbol("cs.buffer_id", 32)
    state.assume(command <= 6)
    flags_mask = c.OFPFF_SEND_FLOW_REM | c.OFPFF_EMERG
    state.assume((flags & ~flags_mask & 0xFFFF) == 0)
    if scale == "small":
        state.assume((out_port_filter == c.OFPP_NONE) | (out_port_filter <= 4))
    match = Match.exact_tcp(
        in_port=PROBE_IN_PORT,
        dl_src=0x00163E000001, dl_dst=0x00163E000002,
        nw_src=0x0A000001, nw_dst=0x0A000002,
        tp_src=PROBE_TP_SRC, tp_dst=PROBE_TP_DST,
    )
    message = FlowMod(
        xid=7, match=match, command=command, priority=0x8000,
        buffer_id=buffer_id, out_port=out_port_filter, flags=flags,
        actions=[ActionOutput(port=action_port, max_len=0)],
    )
    return message.pack()


def _build_concrete_sequence() -> List[TestInput]:
    def features(state: PathState) -> SymBuffer:
        return FeaturesRequest(xid=10).pack()

    def get_config(state: PathState) -> SymBuffer:
        return GetConfigRequest(xid=11).pack()

    def barrier(state: PathState) -> SymBuffer:
        return BarrierRequest(xid=12).pack()

    def echo(state: PathState) -> SymBuffer:
        return EchoRequest(xid=13).pack()

    return [
        ControlMessageInput("features_request", features, symbolic=False),
        ControlMessageInput("get_config_request", get_config, symbolic=False),
        ControlMessageInput("barrier_request", barrier, symbolic=False),
        ControlMessageInput("echo_request", echo, symbolic=False),
    ]


def _build_short_symb(state: PathState) -> SymBuffer:
    buf = SymBuffer()
    buf.write_u8(c.OFP_VERSION)
    buf.write_u8(state.new_symbol("ss.type", 8))
    buf.write_u16(state.new_symbol("ss.length", 16))
    buf.write_u32(state.new_symbol("ss.xid", 32))
    buf.write_u8(state.new_symbol("ss.body0", 8))
    buf.write_u8(state.new_symbol("ss.body1", 8))
    return buf


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------


def _table1_specs(scale: str) -> Dict[str, TestSpec]:
    return {
        "packet_out": TestSpec(
            key="packet_out",
            title="Packet Out",
            description="A single Packet Out message containing a symbolic action "
                        "and a symbolic output action.",
            inputs=[ControlMessageInput("packet_out", _build_packet_out)],
            message_count=1,
            scale=scale,
        ),
        "stats_request": TestSpec(
            key="stats_request",
            title="Stats Request",
            description="A single symbolic Stats Request covering all possible "
                        "statistics requests.",
            inputs=[ControlMessageInput("stats_request", _build_stats_request)],
            message_count=1,
            scale=scale,
        ),
        "set_config": TestSpec(
            key="set_config",
            title="Set Config",
            description="A symbolic Set Config message followed by a probing TCP packet.",
            inputs=[
                ControlMessageInput("set_config", _build_set_config),
                ProbeInput("tcp_probe", _tcp_probe),
            ],
            message_count=2,
            scale=scale,
        ),
        "flow_mod": TestSpec(
            key="flow_mod",
            title="FlowMod",
            description="A symbolic Flow Mod with a symbolic action and a symbolic "
                        "output action followed by a probing TCP packet.",
            inputs=[
                ControlMessageInput("flow_mod", _build_flow_mod),
                ProbeInput("tcp_probe", _tcp_probe),
            ],
            message_count=2,
            scale=scale,
        ),
        "eth_flow_mod": TestSpec(
            key="eth_flow_mod",
            title="Eth FlowMod",
            description="A symbolic Flow Mod whose non-Ethernet fields are concretized, "
                        "followed by a probing Ethernet packet.",
            inputs=[
                ControlMessageInput("eth_flow_mod", _build_eth_flow_mod),
                ProbeInput("eth_probe", _eth_probe),
            ],
            message_count=2,
            scale=scale,
        ),
        "cs_flow_mods": TestSpec(
            key="cs_flow_mods",
            title="CS FlowMods",
            description="Two Flow Mods: the first concrete, the second symbolic.",
            inputs=[
                ControlMessageInput("concrete_flow_mod", _build_cs_first, symbolic=False),
                ControlMessageInput("symbolic_flow_mod", _build_cs_second),
            ],
            message_count=2,
            scale=scale,
        ),
        "concrete": TestSpec(
            key="concrete",
            title="Concrete",
            description="Four concrete 8-byte messages (the messages without variable fields).",
            inputs=_build_concrete_sequence(),
            message_count=4,
            scale=scale,
        ),
        "short_symb": TestSpec(
            key="short_symb",
            title="Short Symb",
            description="A 10-byte symbolic message; only the OpenFlow version field is concrete.",
            inputs=[ControlMessageInput("short_symbolic", _build_short_symb)],
            message_count=1,
            scale=scale,
        ),
    }


TABLE1_TESTS = ("packet_out", "stats_request", "set_config", "flow_mod",
                "eth_flow_mod", "cs_flow_mods", "concrete", "short_symb")


def catalog(scale: Optional[str] = None) -> Dict[str, TestSpec]:
    """All Table-1 test specifications, keyed by their short name."""

    return _table1_specs(scale or current_scale())


def get_test(key: str, scale: Optional[str] = None) -> TestSpec:
    """Look up one test specification by key."""

    specs = catalog(scale)
    try:
        return specs[key]
    except KeyError:
        raise KeyError("unknown test %r; known tests: %s" % (key, ", ".join(TABLE1_TESTS)))
