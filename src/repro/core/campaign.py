"""Campaign sessions: N tests x M agents, explored once, crosschecked all-pairs.

The paper's workflow is two-phase: every vendor runs Phase 1 (symbolic
exploration) exactly once per test, and only the intermediate results are
pairwise crosschecked in Phase 2.  :class:`Campaign` makes that the unit of
work of the public API:

* Phase 1 runs **once per (agent, test, config)** through an
  :class:`ExplorationCache` — an all-pairs campaign over M agents performs M
  explorations per test, not ``2 * C(M, 2)``.
* Cache entries can be **seeded from saved artifacts**
  (:mod:`repro.core.artifacts`), enabling the vendor exchange of §2.4:
  explore in-house, save to JSON, crosscheck later without source code or
  re-exploration.
* Pairs fan out across a worker pool (``workers=N``).  Threads are the
  default executor; ``executor="process"`` runs Phase 1 in separate
  processes for true CPU parallelism (specs that do not pickle — e.g. with
  closure-built inputs — transparently fall back to the thread pool).
* Phase 2b runs on a campaign-wide :class:`EncodingCache`: one shared
  incremental SAT engine per test, so each agent's group conditions are
  bit-blasted **once per test** no matter how many pairs reference them, and
  every pair query is an assumption-based re-solve of the shared instance.
  ``incremental=False`` restores the legacy fresh-solver-per-pair behaviour.
* The result is a :class:`CampaignReport` aggregating one
  :class:`~repro.core.soft.SoftReport` per (test, pair), with totals, timing
  and machine-readable JSON output.

Quickstart::

    from repro import Campaign

    report = (Campaign()
              .with_tests("stats_request", "set_config")
              .with_agents("reference", "ovs", "modified")
              .with_workers(4)
              .run())
    print(report.describe())
    print(report.to_json())
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field as dataclass_field, replace as dataclass_replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.agents.registry import AGENT_REGISTRY
from repro.core.artifacts import load_exploration_artifact
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.crosscheck import find_inconsistencies
from repro.core.explorer import AgentExplorationReport, explore_agent
from repro.core.jobs import CampaignJob, JobFailure, JobResult, JobSupervisor, RetryPolicy
from repro.core.grouping import GroupedResults, group_paths
from repro.core.corpus import WitnessCorpus
from repro.core.soft import SoftReport
from repro.core.testcase import ConcreteTestCase, ReplayOutcome, build_testcase, replay_testcase
from repro.core.tests_catalog import TABLE1_TESTS, TestSpec, get_test
from repro.core.witness import (
    TriageIndex,
    TriageReport,
    Witness,
    build_witness,
    minimize_witness,
)
from repro.errors import CampaignError
from repro.symbex.engine import EngineConfig
from repro.symbex.expr import intern_table
from repro.symbex.simplify import clear_simplify_cache, simplify_cache_stats
from repro.symbex.solver import (
    DEFAULT_PORTFOLIO,
    GroupEncoding,
    Solver,
    SolverConfig,
    backend_names,
    merge_stat_dicts,
)

__all__ = ["Campaign", "CampaignReport", "EncodingCache", "ExplorationCache"]

# Process exit codes `soft campaign` maps campaign outcomes onto; see
# :attr:`CampaignReport.exit_code`.
EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_USAGE = 2
EXIT_CRASHED = 3

TestLike = Union[str, TestSpec]
Pair = Tuple[str, str]


@dataclass
class _CacheEntry:
    report: AgentExplorationReport
    grouped: GroupedResults
    loaded: bool = False
    #: Wall-clock seconds Phase 1 took for this entry (0.0 when loaded).
    wall_time: float = 0.0
    #: Number of times this entry has been retrieved.
    uses: int = 0


class ExplorationCache:
    """Thread-safe store of Phase-1 results, keyed by (agent, test, scale)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, str, str], _CacheEntry] = {}
        #: Retrievals beyond the first per entry — i.e. explorations *saved*.
        self.hits = 0

    @staticmethod
    def _key(agent: str, spec: TestSpec) -> Tuple[str, str, str]:
        return (agent, spec.key, spec.scale)

    def seed(self, report: AgentExplorationReport, spec: TestSpec,
             grouped: Optional[GroupedResults] = None, loaded: bool = False,
             wall_time: float = 0.0) -> None:
        """Install a Phase-1 result (freshly explored or loaded from disk)."""

        entry = _CacheEntry(report=report, grouped=grouped or group_paths(report),
                            loaded=loaded, wall_time=wall_time)
        with self._lock:
            self._entries[self._key(report.agent_name, spec)] = entry

    def contains(self, agent: str, spec: TestSpec) -> bool:
        with self._lock:
            return self._key(agent, spec) in self._entries

    def peek(self, agent: str, spec: TestSpec) -> Optional[_CacheEntry]:
        """The cached entry, without touching the hit/use accounting."""

        with self._lock:
            return self._entries.get(self._key(agent, spec))

    def get(self, agent: str, spec: TestSpec) -> _CacheEntry:
        with self._lock:
            try:
                entry = self._entries[self._key(agent, spec)]
            except KeyError:
                raise CampaignError("no cached exploration for agent %r on test %r"
                                    % (agent, spec.key))
            if entry.uses:
                self.hits += 1
            entry.uses += 1
            return entry

    def scales_for(self, agent: str, test_key: str) -> List[str]:
        """Scales this (agent, test) is cached at (for mismatch diagnostics)."""

        with self._lock:
            return sorted(scale for (name, key, scale) in self._entries
                          if name == agent and key == test_key)

    def loaded_agent_names(self) -> List[str]:
        """Agents with at least one artifact-seeded entry."""

        with self._lock:
            return sorted({name for (name, _, _), entry in self._entries.items()
                           if entry.loaded})

    @property
    def loaded_count(self) -> int:
        with self._lock:
            return sum(1 for entry in self._entries.values() if entry.loaded)

    @property
    def explored_count(self) -> int:
        with self._lock:
            return sum(1 for entry in self._entries.values() if not entry.loaded)

    def drop_explored(self) -> int:
        """Discard locally explored entries (artifact-seeded ones cannot be
        rebuilt and are kept); returns the number dropped."""

        with self._lock:
            explored = [key for key, entry in self._entries.items()
                        if not entry.loaded]
            for key in explored:
                del self._entries[key]
            return len(explored)


class EncodingCache:
    """Thread-safe store of per-test incremental crosscheck engines.

    All pairs of one campaign that crosscheck the same test share one
    :class:`~repro.symbex.solver.GroupEncoding`, so a group condition is
    encoded exactly once per test regardless of how many pairs reference the
    agent that produced it.
    """

    def __init__(self, solver_config: Optional[SolverConfig] = None) -> None:
        self._lock = threading.Lock()
        self._engines: Dict[Tuple[str, str], GroupEncoding] = {}
        self.solver_config = solver_config

    def engine_for(self, spec: TestSpec) -> GroupEncoding:
        with self._lock:
            key = (spec.key, spec.scale)
            engine = self._engines.get(key)
            if engine is None:
                engine = GroupEncoding(self.solver_config or SolverConfig())
                engine.bind_test(spec.key)
                self._engines[key] = engine
            return engine

    @property
    def engine_count(self) -> int:
        with self._lock:
            return len(self._engines)

    def aggregated(self) -> Dict[str, object]:
        """Summed counters across every per-test engine."""

        with self._lock:
            engines = list(self._engines.values())
        totals: Dict[str, object] = {"mode": "incremental", "engines": len(engines)}
        for engine in engines:
            for name, value in engine.stats_dict().items():
                totals[name] = totals.get(name, 0) + value
        return totals


def _explore_spec_unit(agent: str, spec: TestSpec,
                       engine_config: Optional[EngineConfig],
                       solver_config: Optional[SolverConfig],
                       with_coverage: bool,
                       strategy: Optional[str] = None,
                       workers: int = 1) -> Tuple[AgentExplorationReport, float]:
    """Phase 1 for one unit; module-level so process pools can run it."""

    started = time.perf_counter()
    report = explore_agent(agent, spec, engine_config=engine_config,
                           solver_config=solver_config, with_coverage=with_coverage,
                           strategy=strategy, workers=workers)
    return report, time.perf_counter() - started


def _picklable(spec: TestSpec) -> bool:
    """Whether *spec* can be shipped to a worker process as-is."""

    import pickle

    try:
        pickle.dumps(spec)
        return True
    except (pickle.PicklingError, TypeError, AttributeError):
        return False


@dataclass
class CampaignReport:
    """Aggregated result of one campaign: every (test, pair) crosscheck."""

    tests: List[str]
    agents: List[str]
    pairs: List[Pair]
    #: One SoftReport per (test, pair), test-major order.
    reports: List[SoftReport]
    #: Phase-1 explorations actually executed during this run.
    explorations_run: int
    #: Cache entries seeded from saved artifacts (never re-explored).
    explorations_loaded: int
    #: Cache retrievals beyond the first per (agent, test) during this run —
    #: explorations saved relative to the per-pair re-exploration of the old API.
    cache_hits: int
    workers: int
    total_time: float = 0.0
    #: Agents whose loaded artifacts were never consumed (excluded by the
    #: pair list); non-empty means a supplied artifact contributed nothing.
    unused_loaded_agents: List[str] = dataclass_field(default_factory=list)
    #: Whether Phase 2b ran on the shared incremental engines.
    incremental: bool = True
    #: Campaign-wide Phase-2b solver counters (mode, encodings reused,
    #: assumption solves, backend rebuilds, ...).
    solver_stats: Dict[str, object] = dataclass_field(default_factory=dict)
    #: One row per (agent, test) Phase-1 exploration this campaign consumed:
    #: strategy, workers, paths, solver queries, truncation.
    exploration_stats: List[Dict[str, object]] = dataclass_field(default_factory=list)
    #: Hash-consing activity during this run (hit/miss deltas) plus the
    #: absolute size of the shared intern table and simplify memo.
    intern_stats: Dict[str, object] = dataclass_field(default_factory=dict)
    #: Witness triage result: replay-confirmed, minimized, clustered
    #: inconsistencies (None when ``triage=False`` or replay was disabled).
    triage: Optional[TriageReport] = None
    #: Where cluster representatives were persisted, and how many bundles the
    #: run actually wrote (0 = the corpus already contained them all).
    corpus_dir: Optional[str] = None
    corpus_saved: int = 0
    #: Hybrid-mode hunt reports, one per (test, pair); empty in exhaustive
    #: mode.  When non-empty, ``reports`` is empty and the exploration
    #: counters are zero — the hunts carry the per-pair detail instead.
    hunts: List["HuntReport"] = dataclass_field(default_factory=list)
    #: Campaign-wide coverage aggregate (``with_coverage=True`` only):
    #: static decision-map sites, the dynamic branch points reached, and
    #: their ratio (the true ``coverage_fraction``).
    coverage: Optional[Dict[str, object]] = None
    #: Structured records of every cell that terminalized non-``ok``
    #: (failed / timed_out / crashed / skipped); empty on a clean run.
    job_failures: List[JobFailure] = dataclass_field(default_factory=list)
    #: Executor degradations the supervisor recorded (broken process pools
    #: demoted to threads, unpicklable specs); non-empty means the campaign
    #: did not run on the executor it was asked for.
    executor_degraded: List[Dict[str, object]] = dataclass_field(default_factory=list)
    #: Terminal-state histogram of this run's cells (``{"ok": 7, ...}``).
    job_states: Dict[str, int] = dataclass_field(default_factory=dict)
    #: Checkpoint directory this run journaled into, if any.
    checkpoint_dir: Optional[str] = None
    #: Cells restored from the checkpoint instead of being re-run.
    resumed_cells: int = 0

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 completed-with-failures, 3 crashed.

        A cell that kept *crashing* (dead workers) is a different severity
        than one that failed or timed out in its own code — callers scripting
        around ``soft campaign`` can tell them apart.
        """

        if any(failure.state == "crashed" for failure in self.job_failures):
            return EXIT_CRASHED
        if self.job_failures:
            return EXIT_FAILURES
        return EXIT_OK

    @property
    def coverage_fraction(self) -> Optional[float]:
        """Dynamic branch points / static decision-map sites, campaign-wide.

        ``None`` when the campaign ran without coverage tracking.
        """

        if self.coverage is None:
            return None
        return float(self.coverage.get("coverage_fraction", 0.0))

    def report_for(self, test: str, agent_a: str, agent_b: str) -> Optional[SoftReport]:
        """The pair report for (*test*, *agent_a*, *agent_b*), order-insensitive."""

        for report in self.reports:
            if report.test_key != test:
                continue
            if {report.agent_a, report.agent_b} == {agent_a, agent_b}:
                return report
        return None

    @property
    def pair_count(self) -> int:
        return len(self.reports)

    @property
    def total_inconsistencies(self) -> int:
        return sum(report.inconsistency_count for report in self.reports)

    @property
    def total_queries(self) -> int:
        return sum(report.crosscheck.queries for report in self.reports)

    @property
    def total_replay_verified(self) -> int:
        return sum(report.verified_inconsistency_count() for report in self.reports)

    def summary_rows(self) -> List[Dict[str, object]]:
        """One :meth:`SoftReport.summary_row` per pair (CLI table = JSON rows)."""

        return [report.summary_row() for report in self.reports]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering: totals plus per-pair rows with inconsistencies."""

        pair_objs: List[Dict[str, object]] = []
        for report in self.reports:
            row = report.summary_row()
            row["inconsistencies_detail"] = [
                {
                    "trace_a": inconsistency.trace_a.to_obj(),
                    "trace_b": inconsistency.trace_b.to_obj(),
                    "example": {str(k): int(v) for k, v in inconsistency.example.items()},
                    "solver_time": inconsistency.solver_time,
                }
                for inconsistency in report.inconsistencies
            ]
            row["replays_diverged"] = [replay.diverged for replay in report.replays]
            pair_objs.append(row)
        return {
            "format": "soft/campaign-report/v1",
            "tests": list(self.tests),
            "agents": list(self.agents),
            "pairs": [list(pair) for pair in self.pairs],
            "workers": self.workers,
            "explorations_run": self.explorations_run,
            "explorations_loaded": self.explorations_loaded,
            "cache_hits": self.cache_hits,
            "unused_loaded_agents": list(self.unused_loaded_agents),
            "incremental": self.incremental,
            "solver_stats": dict(self.solver_stats),
            "intern_stats": dict(self.intern_stats),
            "triage": self.triage.to_dict() if self.triage is not None else None,
            "corpus": ({"dir": self.corpus_dir, "saved": self.corpus_saved}
                       if self.corpus_dir else None),
            "explorations": [dict(row) for row in self.exploration_stats],
            "hunts": [hunt.to_dict() for hunt in self.hunts],
            "coverage": dict(self.coverage) if self.coverage is not None else None,
            "job_failures": [failure.to_dict() for failure in self.job_failures],
            "job_states": dict(self.job_states),
            "executor_degraded": [dict(event) for event in self.executor_degraded],
            "checkpoint": ({"dir": self.checkpoint_dir,
                            "resumed_cells": self.resumed_cells}
                           if self.checkpoint_dir else None),
            "exit_code": self.exit_code,
            "totals": {
                "pair_reports": self.pair_count,
                "solver_queries": self.total_queries,
                "inconsistencies": self.total_inconsistencies,
                "replay_verified": self.total_replay_verified,
                "total_time": self.total_time,
            },
            "pair_reports": pair_objs,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Machine-readable report (``soft campaign --json``)."""

        return json.dumps(self.to_dict(), indent=indent)

    def describe(self) -> str:
        """Human-readable table over the same counts as :meth:`to_dict`."""

        lines = [
            "campaign: %d test(s) x %d agent(s), %d pair report(s), workers=%d"
            % (len(self.tests), len(self.agents), self.pair_count, self.workers),
            "  phase 1: %d exploration(s) run, %d loaded from artifacts, "
            "%d exploration(s) saved by the cache"
            % (self.explorations_run, self.explorations_loaded, self.cache_hits),
        ]
        if self.checkpoint_dir:
            lines.append("  checkpoint: %s (%d cell(s) restored on resume)"
                         % (self.checkpoint_dir, self.resumed_cells))
        for event in self.executor_degraded:
            lines.append("  warning: executor degraded: %s"
                         % event.get("reason", event.get("kind", "unknown")))
        for failure in self.job_failures:
            lines.append("  cell %s" % failure.describe())
        explored = [row for row in self.exploration_stats if not row.get("loaded")]
        if explored:
            strategies = sorted({str(row.get("strategy")) for row in explored
                                 if row.get("strategy")})
            lines.append(
                "  phase 1 engine: strategy=%s, %d path(s), %d solver query(ies), "
                "max %d worker(s) per exploration"
                % ("/".join(strategies) or "dfs",
                   sum(int(row.get("paths") or 0) for row in explored),
                   sum(int(row.get("solver_queries") or 0) for row in explored),
                   max(int(row.get("workers") or 1) for row in explored)))
        stats = self.solver_stats or {}
        if stats.get("mode") == "incremental":
            lines.append(
                "  phase 2b: incremental: %d engine(s), %d group(s) encoded "
                "(%d reused), %d assumption solve(s), %d interval decide(s), "
                "%d backend rebuild(s)"
                % (stats.get("engines", 0), stats.get("groups_encoded", 0),
                   stats.get("encoding_reuses", 0),
                   stats.get("assumption_solves", 0),
                   stats.get("interval_decides", 0),
                   stats.get("backend_rebuilds", 0)))
        elif stats.get("mode") == "legacy":
            lines.append(
                "  phase 2b: legacy: %d backend rebuild(s) across %d query(ies)"
                % (stats.get("sat_backend_runs", 0), stats.get("queries", 0)))
        if self.coverage is not None:
            lines.append(
                "  coverage: %d of %d static decision site(s) reached "
                "(coverage_fraction=%.3f)"
                % (self.coverage.get("executed_branch_points", 0),
                   self.coverage.get("decision_sites", 0),
                   float(self.coverage.get("coverage_fraction", 0.0))))
        if self.intern_stats:
            lines.append(
                "  terms: %d distinct interned (%.0f%% construction hit rate), "
                "%d simplify-memo entries"
                % (self.intern_stats.get("distinct_terms", 0),
                   100.0 * float(self.intern_stats.get("hit_rate") or 0.0),
                   self.intern_stats.get("simplify_cache_size", 0)))
        if self.unused_loaded_agents:
            lines.append(
                "  warning: loaded artifact(s) for %s matched no pair and were unused"
                % ", ".join(self.unused_loaded_agents))
        for hunt in self.hunts:
            lines.append(
                "  hunt %-14s %-24s %3d witness(es) -> %d cluster(s), "
                "%d slice(s), %.2fs"
                % (hunt.test_key,
                   "%s vs %s" % (hunt.agent_a, hunt.agent_b),
                   len(hunt.witnesses), hunt.cluster_count,
                   hunt.stats.slices, hunt.stats.wall_time))
        lines.append(
            "  %-14s %-24s %9s %9s %8s %7s %9s %8s"
            % ("TEST", "PAIR", "PATHS", "OUTPUTS", "QUERIES", "INCONS", "VERIFIED", "TIME"))
        for row in self.summary_rows():
            lines.append(
                "  %-14s %-24s %9s %9s %8d %7d %9d %7.2fs"
                % (
                    row["test"],
                    "%s vs %s" % (row["agent_a"], row["agent_b"]),
                    "%d/%d" % (row["paths_a"], row["paths_b"]),
                    "%d/%d" % (row["outputs_a"], row["outputs_b"]),
                    row["solver_queries"],
                    row["inconsistencies"],
                    row["replay_verified"],
                    row["total_time"],
                ))
        lines.append(
            "  totals: %d solver queries, %d inconsistencies (%d replay-verified), %.2fs"
            % (self.total_queries, self.total_inconsistencies,
               self.total_replay_verified, self.total_time))
        if self.triage is not None:
            lines.append("  " + self.triage.describe().replace("\n", "\n  "))
        if self.corpus_dir:
            lines.append("  corpus: %d new bundle(s) saved to %s"
                         % (self.corpus_saved, self.corpus_dir))
        return "\n".join(lines)


class Campaign:
    """A configurable N-test x M-agent crosschecking session.

    Configure through constructor keywords or the fluent ``with_*`` methods,
    then call :meth:`run`.  ``tests="all"`` expands to the full Table-1
    catalogue; pairs default to all unordered agent combinations.
    """

    def __init__(self,
                 tests: Optional[Union[str, Sequence[TestLike]]] = None,
                 agents: Optional[Sequence[str]] = None,
                 pairs: Optional[Sequence[Pair]] = None,
                 workers: int = 1,
                 executor: str = "thread",
                 engine_config: Optional[EngineConfig] = None,
                 solver_config: Optional[SolverConfig] = None,
                 backend: Optional[str] = None,
                 portfolio: Union[bool, Sequence[str]] = False,
                 with_coverage: bool = False,
                 build_testcases: bool = True,
                 replay_testcases: bool = True,
                 incremental: bool = True,
                 strategy: Optional[str] = None,
                 reset_intern: bool = False,
                 triage: bool = True,
                 minimize: bool = True,
                 minimize_budget: int = 96,
                 corpus_dir: Optional[str] = None,
                 agent_options: Optional[Dict[str, Dict[str, object]]] = None,
                 hybrid: Optional["HybridConfig"] = None,
                 cell_timeout: Optional[float] = None,
                 retries: int = 1,
                 retry_policy: Optional[RetryPolicy] = None,
                 checkpoint_dir: Optional[str] = None,
                 resume: bool = False,
                 fault_plan=None) -> None:
        self._tests: List[TestLike] = []
        self._agents: List[str] = []
        self._pairs: Optional[List[Pair]] = None
        self.workers = max(1, int(workers))
        self.executor = executor
        self.engine_config = engine_config
        #: *backend* / *portfolio* are conveniences over *solver_config*: they
        #: derive one (or override the given one) so callers can switch the
        #: decision procedure without spelling out a full SolverConfig.
        #: ``portfolio=True`` enables the model-deterministic default race;
        #: a sequence names explicit members.
        self.solver_config = self._derive_solver_config(
            solver_config, backend, portfolio)
        self.with_coverage = with_coverage
        self.build_testcases = build_testcases
        self.replay_testcases = replay_testcases
        self.incremental = incremental
        #: Reset the process-wide expression intern table (and the simplify
        #: memo built on top of it) at the start of each run.  Off by
        #: default: sharing terms across runs is what makes repeated
        #: same-scale campaigns cheap; opt in when switching scales to
        #: release the previous scale's accumulated terms.  NOTE: the table
        #: is process-global — the reset also invalidates identity-based
        #: sharing for every OTHER live Campaign/engine in the process
        #: (still correct via the structural-key fallback, but their id-keyed
        #: caches stop hitting for new-generation terms), so use it from the
        #: one campaign object that owns the process's exploration life cycle.
        self.reset_intern = reset_intern
        #: Run the witness pipeline (replay confirmation, delta-minimization,
        #: signature clustering) on every pair's inconsistencies.  On by
        #: default: triage is the campaign's actionable output layer.  It
        #: silently skips pairs whose agents cannot be replayed (artifact-only
        #: agents) and records them in the triage report instead.
        self.triage = triage
        self.minimize = minimize
        self.minimize_budget = max(0, int(minimize_budget))
        #: When set, confirmed cluster representatives are persisted as
        #: witness bundles into this directory at the end of each run.
        self.corpus_dir = corpus_dir
        #: Per-agent keyword arguments threaded into ``make_agent`` whenever a
        #: concrete replay instantiates an agent (triage, corpus, replays).
        self.agent_options: Dict[str, Dict[str, object]] = dict(agent_options or {})
        #: When set, :meth:`run` runs one budgeted hybrid hunt
        #: (:class:`repro.hybrid.HybridHunt`) per (test, pair) instead of the
        #: one-shot exhaustive pipeline; the budget applies per hunt.  All
        #: hunt witnesses still merge into the campaign-wide triage/corpus.
        self.hybrid = hybrid
        #: Per-cell wall-clock deadline in seconds (None = unlimited).  A
        #: cell that exceeds it is abandoned by the job supervisor and, once
        #: its retries are spent, lands as terminal state ``timed_out``.
        self.cell_timeout = cell_timeout
        #: Extra attempts per cell after the first (the full policy —
        #: backoff, jitter — is overridable via *retry_policy*).
        self.retries = max(0, int(retries))
        self.retry_policy = retry_policy
        #: Journal terminal cells (and their payloads) into this directory;
        #: with ``resume=True`` cells whose last recorded state is ``ok`` are
        #: restored instead of re-run.  Failed/timed-out/crashed cells get a
        #: fresh retry budget on resume.
        self.checkpoint_dir = checkpoint_dir
        self.resume = bool(resume)
        if self.resume and not self.checkpoint_dir:
            raise CampaignError("resume=True requires checkpoint_dir "
                                "(soft campaign --resume requires --checkpoint)")
        #: Deterministic :class:`repro.testing.faults.FaultPlan` installed for
        #: the duration of each run (and shipped to worker processes).
        self.fault_plan = fault_plan
        self.strategy: Optional[str] = None
        if strategy is not None:
            self.with_strategy(strategy)
        self.cache = ExplorationCache()
        self.encodings = EncodingCache(self.solver_config)
        if executor not in ("thread", "process"):
            raise CampaignError("executor must be 'thread' or 'process', got %r" % (executor,))
        if tests is not None:
            if isinstance(tests, str):
                self.with_tests(tests)
            else:
                self.with_tests(*tests)
        if agents is not None:
            self.with_agents(*agents)
        if pairs is not None:
            self.with_pairs(*pairs)

    @staticmethod
    def _derive_solver_config(solver_config: Optional[SolverConfig],
                              backend: Optional[str],
                              portfolio: Union[bool, Sequence[str]]
                              ) -> Optional[SolverConfig]:
        if backend is None and not portfolio:
            return solver_config
        if backend is not None and backend not in backend_names():
            raise CampaignError("unknown solver backend %r (choose from: %s)"
                                % (backend, ", ".join(backend_names())))
        members: Tuple[str, ...] = ()
        if portfolio is True:
            members = DEFAULT_PORTFOLIO
        elif portfolio:
            members = tuple(portfolio)
            for name in members:
                if name not in backend_names():
                    raise CampaignError(
                        "unknown portfolio member %r (choose from: %s)"
                        % (name, ", ".join(backend_names())))
        base = solver_config if solver_config is not None else SolverConfig()
        return dataclass_replace(base, backend=backend or base.backend,
                                 portfolio=members or base.portfolio)

    # ------------------------------------------------------------------
    # Fluent configuration
    # ------------------------------------------------------------------

    def with_tests(self, *tests: TestLike) -> "Campaign":
        """Add tests; the single string ``"all"`` expands to the catalogue."""

        for test in tests:
            if isinstance(test, str) and test == "all":
                self._add_tests(TABLE1_TESTS)
            else:
                self._add_tests([test])
        return self

    def _add_tests(self, tests: Sequence[TestLike]) -> None:
        for test in tests:
            key = test if isinstance(test, str) else test.key
            for index, existing in enumerate(self._tests):
                existing_key = existing if isinstance(existing, str) else existing.key
                if existing_key == key:
                    # A concrete spec (e.g. from an artifact, carrying its
                    # scale) wins over a bare key string added earlier.
                    if isinstance(existing, str) and not isinstance(test, str):
                        self._tests[index] = test
                    break
            else:
                self._tests.append(test)

    def with_agents(self, *agents: str) -> "Campaign":
        """Add agents under test (deduplicated, order preserved)."""

        for agent in agents:
            if agent not in self._agents:
                self._agents.append(agent)
        return self

    def with_pairs(self, *pairs: Pair) -> "Campaign":
        """Replace the default all-pairs matrix with explicit (a, b) pairs."""

        checked: List[Pair] = []
        for pair in pairs:
            if len(pair) != 2:
                raise CampaignError("a pair must name exactly two agents, got %r" % (pair,))
            checked.append((pair[0], pair[1]))
            self.with_agents(*pair)
        self._pairs = (self._pairs or []) + checked
        return self

    def with_strategy(self, strategy: str) -> "Campaign":
        """Select the Phase-1 search strategy (dfs/bfs/random/coverage)."""

        from repro.symbex.strategies import STRATEGIES

        if strategy not in STRATEGIES:
            raise CampaignError(
                "unknown search strategy %r (available: %s)"
                % (strategy, ", ".join(sorted(STRATEGIES))))
        self.strategy = strategy
        return self

    def with_corpus(self, corpus_dir: Optional[str]) -> "Campaign":
        """Persist confirmed cluster representatives to *corpus_dir* after runs."""

        self.corpus_dir = corpus_dir
        return self

    def with_hybrid(self, config: Optional["HybridConfig"] = None,
                    **knobs: object) -> "Campaign":
        """Switch :meth:`run` to budgeted hybrid hunts per (test, pair).

        Pass a pre-built :class:`repro.hybrid.HybridConfig`, or keyword knobs
        (``budget=5.0, stages=("fuzz", "concolic")``) to build one.
        """

        from repro.hybrid.scheduler import HybridConfig

        if config is not None and knobs:
            raise CampaignError("pass either a HybridConfig or knobs, not both")
        self.hybrid = config if config is not None else HybridConfig(**knobs)
        return self

    def with_agent_options(self, agent: str, **options: object) -> "Campaign":
        """Keyword arguments for ``make_agent(agent, ...)`` during replays."""

        self.agent_options.setdefault(agent, {}).update(options)
        return self

    def with_workers(self, workers: int, executor: Optional[str] = None) -> "Campaign":
        """Set the worker-pool width (and optionally the executor kind)."""

        self.workers = max(1, int(workers))
        if executor is not None:
            if executor not in ("thread", "process"):
                raise CampaignError("executor must be 'thread' or 'process', got %r"
                                    % (executor,))
            self.executor = executor
        return self

    def with_cell_timeout(self, timeout: Optional[float],
                          retries: Optional[int] = None) -> "Campaign":
        """Per-cell wall-clock deadline (and optionally the retry budget)."""

        self.cell_timeout = timeout
        if retries is not None:
            self.retries = max(0, int(retries))
        return self

    def with_checkpoint(self, directory: Optional[str],
                        resume: bool = False) -> "Campaign":
        """Journal terminal cells into *directory*; ``resume=True`` skips
        cells the journal already records as ``ok``."""

        if resume and not directory:
            raise CampaignError("resume=True requires a checkpoint directory")
        self.checkpoint_dir = directory
        self.resume = bool(resume)
        return self

    def with_fault_plan(self, plan) -> "Campaign":
        """Install a :class:`repro.testing.faults.FaultPlan` for each run."""

        self.fault_plan = plan
        return self

    # ------------------------------------------------------------------
    # Artifact seeding (the vendor workflow)
    # ------------------------------------------------------------------

    def add_artifact(self, artifact: Union[AgentExplorationReport, Dict[str, object]],
                     scale: Optional[str] = None) -> "Campaign":
        """Seed the cache with a Phase-1 result (report object or its dict form).

        The artifact's agent joins the campaign automatically, so
        ``Campaign().with_agents("reference").add_artifact(ovs_artifact)``
        crosschecks reference against the shipped OVS results without ever
        exploring OVS locally.  The artifact records the scale it was explored
        at; *scale* overrides it (for artifacts predating the scale tag).
        """

        if isinstance(artifact, dict):
            artifact = AgentExplorationReport.from_dict(artifact)
        try:
            spec = get_test(artifact.test_key, scale=scale or artifact.scale)
        except KeyError as exc:
            raise CampaignError(exc.args[0] if exc.args else str(exc))
        self.cache.seed(artifact, spec, loaded=True)
        self.with_agents(artifact.agent_name)
        # Register the resolved spec itself so the run crosschecks at the
        # artifact's scale rather than re-resolving the key at session scale.
        self._add_tests([spec])
        return self

    def load_artifact(self, path: str, scale: Optional[str] = None) -> "Campaign":
        """Load a JSON artifact saved by ``soft explore --save`` and seed it."""

        return self.add_artifact(load_exploration_artifact(path), scale=scale)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _resolve_tests(self) -> List[TestSpec]:
        if not self._tests:
            raise CampaignError("campaign has no tests; call with_tests(...) first")
        resolved: List[TestSpec] = []
        for test in self._tests:
            if isinstance(test, str):
                try:
                    resolved.append(get_test(test))
                except KeyError as exc:
                    raise CampaignError(exc.args[0] if exc.args else str(exc))
            else:
                resolved.append(test)
        return resolved

    def _resolve_pairs(self) -> List[Pair]:
        if self._pairs is not None:
            if not self._pairs:
                raise CampaignError("campaign has an empty explicit pair list")
            return list(self._pairs)
        if len(self._agents) < 2:
            raise CampaignError(
                "campaign needs at least two agents for all-pairs crosschecking; "
                "got %r" % (self._agents,))
        return list(itertools.combinations(self._agents, 2))

    def _validate_agents(self, specs: Sequence[TestSpec],
                         agents: Sequence[str]) -> None:
        for agent in agents:
            for spec in specs:
                if self.cache.contains(agent, spec):
                    continue
                # A cached entry at a different scale would be silently
                # bypassed (and a registered agent re-explored) — refuse.
                other_scales = self.cache.scales_for(agent, spec.key)
                if other_scales:
                    raise CampaignError(
                        "artifact for agent %r on test %r was explored at scale "
                        "%s but this campaign resolves the test at scale %r"
                        % (agent, spec.key, "/".join(map(repr, other_scales)),
                           spec.scale))
                if agent not in AGENT_REGISTRY:
                    raise CampaignError(
                        "agent %r is not registered and has no loaded artifact "
                        "for test %r" % (agent, spec.key))

    def _journal_record(self, result: JobResult) -> Dict[str, object]:
        return {
            "cell": list(result.job.key),
            "state": result.state,
            "attempts": result.job.attempts,
            "wall_time": result.wall_time,
            "error": (result.failure.to_dict()
                      if result.failure is not None else None),
        }

    def _run_phase1(self, specs: Sequence[TestSpec], agents: Sequence[str],
                    supervisor: JobSupervisor,
                    checkpoint: Optional[CampaignCheckpoint],
                    completed: Dict[Tuple[str, ...], Dict[str, object]],
                    job_failures: List[JobFailure],
                    job_states: Dict[str, int]) -> Tuple[int, int]:
        """Explore every un-cached (agent, test) unit under the supervisor.

        Returns ``(explorations_run, cells_restored_from_checkpoint)``.  A
        unit whose checkpointed state is ``ok`` is seeded from the saved
        artifact instead of re-explored; a unit that exhausts its retries
        lands in *job_failures* and its dependent pairs are later skipped.
        """

        units = [(agent, spec) for spec in specs for agent in agents
                 if not self.cache.contains(agent, spec)]
        restored = 0
        if checkpoint is not None and completed:
            remaining: List[Tuple[str, TestSpec]] = []
            for agent, spec in units:
                cell = CampaignCheckpoint.phase1_cell(agent, spec)
                if cell in completed and checkpoint.has_phase1(agent, spec):
                    self.cache.seed(checkpoint.load_phase1(agent, spec), spec,
                                    loaded=True)
                    restored += 1
                else:
                    remaining.append((agent, spec))
            units = remaining
        if not units:
            return 0, restored

        # Ship the actual spec to worker processes — never a re-resolved
        # catalog lookalike.  Specs that do not pickle (closure-built inputs)
        # run on threads instead; that demotion is recorded, not silent.
        process_ids: set = set()
        if self.executor == "process" and self.workers > 1:
            process_ids = {id(unit) for unit in units if _picklable(unit[1])}
            unpicklable = sorted({unit[1].key for unit in units
                                  if id(unit) not in process_ids})
            if unpicklable:
                supervisor.record_degradation(
                    "spec(s) %s do not pickle; their Phase-1 cells run on "
                    "the thread executor" % ", ".join(unpicklable),
                    kind="unpicklable-spec", tests=unpicklable)

        # When the pool is wider than the thread-run unit list, leftover
        # width goes into each unit: the engine splits that test's
        # exploration frontier across split_workers thread engines.
        thread_count = len(units) - len(process_ids)
        split_workers = 1
        if self.workers > 1 and 0 < thread_count < self.workers:
            split_workers = max(1, self.workers // thread_count)

        unit_by_cell: Dict[Tuple[str, ...], Tuple[str, TestSpec]] = {}
        jobs: List[CampaignJob] = []
        for unit in units:
            agent, spec = unit
            cell = CampaignCheckpoint.phase1_cell(agent, spec)
            unit_by_cell[cell] = unit

            def thread_fn(agent: str = agent, spec: TestSpec = spec) -> Tuple:
                started = time.perf_counter()
                # Module-global lookup on purpose: tests monkeypatch
                # campaign-side explore_agent to instrument Phase 1.
                report = explore_agent(
                    agent, spec, engine_config=self.engine_config,
                    solver_config=self.solver_config,
                    with_coverage=self.with_coverage,
                    strategy=self.strategy, workers=split_workers)
                return report, time.perf_counter() - started

            process_task = None
            if id(unit) in process_ids:
                process_task = (_explore_spec_unit,
                                (agent, spec, self.engine_config,
                                 self.solver_config, self.with_coverage,
                                 self.strategy))
            jobs.append(CampaignJob(kind="phase1", key=cell,
                                    thread_fn=thread_fn,
                                    process_task=process_task))

        ran = [0]

        def on_result(result: JobResult) -> None:
            job_states[result.state] = job_states.get(result.state, 0) + 1
            agent, spec = unit_by_cell[result.job.key]
            if result.ok:
                report, wall = result.value
                self.cache.seed(report, spec, wall_time=wall)
                ran[0] += 1
                if checkpoint is not None:
                    checkpoint.save_phase1(report, spec)
            else:
                job_failures.append(result.failure)
            if checkpoint is not None:
                checkpoint.append(self._journal_record(result))

        supervisor.run(jobs, on_result=on_result)
        return ran[0], restored

    def _run_pair(self, spec: TestSpec, agent_a: str, agent_b: str,
                  exploration_shares: Optional[Dict[Tuple[str, str], int]] = None,
                  ) -> SoftReport:
        """Phase 2 for one (test, pair): crosscheck, concretize, replay, triage.

        *exploration_shares* maps (agent, test key) to the number of pairs
        consuming that cached exploration; its wall time is split between
        them so that summing per-pair ``total_time`` does not multiply the
        shared Phase-1 cost.

        When triage is on, every replayed inconsistency becomes a
        :class:`~repro.core.witness.Witness` and is delta-minimized with
        replay as the oracle.  Witnesses ride back on the report; the
        campaign merges them into its shared triage index on the supervisor
        thread — pair cells run under per-cell deadlines, and an attempt
        abandoned at its deadline must not have mutated shared state.
        """

        started = time.perf_counter()
        entry_a = self.cache.get(agent_a, spec)
        entry_b = self.cache.get(agent_b, spec)
        shares_a = (exploration_shares or {}).get((agent_a, spec.key), 1)
        shares_b = (exploration_shares or {}).get((agent_b, spec.key), 1)
        if self.incremental:
            crosscheck = find_inconsistencies(
                entry_a.grouped, entry_b.grouped,
                engine=self.encodings.engine_for(spec))
        else:
            crosscheck = find_inconsistencies(
                entry_a.grouped, entry_b.grouped,
                solver=Solver(self.solver_config or SolverConfig()))

        testcases: List[ConcreteTestCase] = []
        replays: List[ReplayOutcome] = []
        witnesses: List[Witness] = []
        can_replay = (self.replay_testcases
                      and agent_a in AGENT_REGISTRY and agent_b in AGENT_REGISTRY)
        if self.build_testcases:
            for inconsistency in crosscheck.inconsistencies:
                testcase = build_testcase(spec, inconsistency.example, inconsistency)
                testcases.append(testcase)
                if can_replay:
                    replays.append(replay_testcase(
                        testcase, agent_a, agent_b,
                        agent_options=self.agent_options))

        if self.triage and can_replay and self.build_testcases:
            def replayer(candidate: ConcreteTestCase) -> ReplayOutcome:
                return replay_testcase(candidate, agent_a, agent_b,
                                       agent_options=self.agent_options)

            for inconsistency, testcase, replay in zip(
                    crosscheck.inconsistencies, testcases, replays):
                witness = build_witness(spec, inconsistency, testcase, replay)
                if self.minimize and witness.confirmed:
                    witness = minimize_witness(
                        witness, spec, replayer,
                        max_replays=self.minimize_budget)
                witnesses.append(witness)

        return SoftReport(
            test_key=spec.key,
            agent_a=agent_a,
            agent_b=agent_b,
            exploration_a=entry_a.report,
            exploration_b=entry_b.report,
            grouped_a=entry_a.grouped,
            grouped_b=entry_b.grouped,
            crosscheck=crosscheck,
            testcases=testcases,
            replays=replays,
            witnesses=witnesses,
            total_time=(time.perf_counter() - started
                        + entry_a.wall_time / shares_a
                        + entry_b.wall_time / shares_b),
        )

    def _make_supervisor(self) -> JobSupervisor:
        return JobSupervisor(
            workers=self.workers,
            executor=self.executor,
            cell_timeout=self.cell_timeout,
            retry=self.retry_policy or RetryPolicy(retries=self.retries),
            fault_plan=self.fault_plan,
        )

    def _open_checkpoint(self, specs: Sequence[TestSpec], pairs: Sequence[Pair],
                         paired_agents: Sequence[str]):
        if not self.checkpoint_dir:
            return None, {}
        checkpoint = CampaignCheckpoint(self.checkpoint_dir)
        checkpoint.open(CampaignCheckpoint.fingerprint_for(
            specs, paired_agents, pairs, self.strategy, self.incremental,
            self.hybrid is not None), resume=self.resume)
        completed = checkpoint.completed_cells() if self.resume else {}
        return checkpoint, completed

    def run(self) -> CampaignReport:
        """Execute the whole campaign and return the aggregated report."""

        if self.fault_plan is not None:
            from repro.testing.faults import installed_fault_plan

            with installed_fault_plan(self.fault_plan):
                return self._run()
        return self._run()

    def _run(self) -> CampaignReport:
        started = time.perf_counter()
        if self.corpus_dir and not self.triage:
            raise CampaignError(
                "corpus_dir=%r requires triage: the corpus stores triage's "
                "cluster representatives (enable triage or drop corpus_dir)"
                % (self.corpus_dir,))
        if self.reset_intern:
            # New intern generation: release the previous scale's terms.
            # Everything that pins old-generation terms must go with it — the
            # simplify memo, the per-test incremental engines (id-keyed group
            # maps would never hit against new-generation terms and would
            # keep re-encoding into the same growing SAT instances), and
            # locally explored Phase-1 entries.  Artifact-seeded entries are
            # kept: they cannot be rebuilt, and cross-generation use stays
            # correct via the structural-key fallback.
            clear_simplify_cache()
            intern_table().reset()
            self.encodings = EncodingCache(self.solver_config)
            self.cache.drop_explored()
        table = intern_table()
        intern_hits_before = table.hits
        intern_misses_before = table.misses
        specs = self._resolve_tests()
        pairs = self._resolve_pairs()
        # Only agents that appear in a pair are explored/validated; an agent
        # configured but excluded by an explicit pair list costs nothing.
        paired_agents = [agent for agent in self._agents
                         if any(agent in pair for pair in pairs)]
        self._validate_agents(specs, paired_agents)

        supervisor = self._make_supervisor()
        checkpoint, completed = self._open_checkpoint(specs, pairs, paired_agents)
        job_failures: List[JobFailure] = []
        job_states: Dict[str, int] = {}

        if self.hybrid is not None:
            return self._run_hybrid(started, specs, pairs, paired_agents,
                                    supervisor, checkpoint, completed,
                                    job_failures, job_states)

        loaded_before = self.cache.loaded_count
        hits_before = self.cache.hits
        encoding_stats_before = self.encodings.aggregated()
        explorations_run, resumed = self._run_phase1(
            specs, paired_agents, supervisor, checkpoint, completed,
            job_failures, job_states)

        cells = [(spec, agent_a, agent_b) for spec in specs
                 for agent_a, agent_b in pairs]
        shares: Dict[Tuple[str, str], int] = {}
        for spec, agent_a, agent_b in cells:
            for agent in (agent_a, agent_b):
                key = (agent, spec.key)
                shares[key] = shares.get(key, 0) + 1

        triage_index = TriageIndex() if self.triage else None
        skipped_triage: List[Tuple[str, str, str, str]] = []

        def merge_triage(spec: TestSpec, agent_a: str, agent_b: str,
                         report: SoftReport) -> None:
            if triage_index is None:
                return
            if report.witnesses:
                triage_index.add_all(report.witnesses)
            elif report.inconsistencies:
                if not self.build_testcases:
                    reason = "testcase generation disabled"
                elif not self.replay_testcases:
                    reason = "replay disabled"
                else:
                    reason = "agent(s) not replayable"
                skipped_triage.append((spec.key, agent_a, agent_b, reason))

        reports_by_cell: Dict[Tuple[str, ...], SoftReport] = {}
        ordered_cells: List[Tuple[str, ...]] = []
        job_meta: Dict[Tuple[str, ...], Tuple[TestSpec, str, str]] = {}
        pair_jobs: List[CampaignJob] = []
        for spec, agent_a, agent_b in cells:
            cell = CampaignCheckpoint.pair_cell(spec, agent_a, agent_b)
            ordered_cells.append(cell)
            job_meta[cell] = (spec, agent_a, agent_b)
            if (checkpoint is not None and cell in completed
                    and self.cache.contains(agent_a, spec)
                    and self.cache.contains(agent_b, spec)):
                report = checkpoint.load_pair(
                    spec, agent_a, agent_b,
                    self.cache.peek(agent_a, spec),
                    self.cache.peek(agent_b, spec))
                reports_by_cell[cell] = report
                resumed += 1
                merge_triage(spec, agent_a, agent_b, report)
                continue
            missing = [agent for agent in (agent_a, agent_b)
                       if not self.cache.contains(agent, spec)]
            if missing:
                # The dependency cell(s) already terminalized non-ok: this
                # pair cannot run, and says so instead of raising mid-flight.
                failure = JobFailure(
                    kind="pair", cell="/".join(cell), state="skipped",
                    attempts=0, error_type="DependencySkipped",
                    message="phase-1 exploration failed for %s"
                            % ", ".join(missing))
                job_failures.append(failure)
                job_states["skipped"] = job_states.get("skipped", 0) + 1
                if checkpoint is not None:
                    checkpoint.append({"cell": list(cell), "state": "skipped",
                                       "attempts": 0, "wall_time": 0.0,
                                       "error": failure.to_dict()})
                continue

            def thread_fn(spec: TestSpec = spec, agent_a: str = agent_a,
                          agent_b: str = agent_b) -> SoftReport:
                return self._run_pair(spec, agent_a, agent_b,
                                      exploration_shares=shares)

            pair_jobs.append(CampaignJob(kind="pair", key=cell,
                                         thread_fn=thread_fn))

        def on_pair_result(result: JobResult) -> None:
            job_states[result.state] = job_states.get(result.state, 0) + 1
            spec, agent_a, agent_b = job_meta[result.job.key]
            if result.ok:
                report = result.value
                reports_by_cell[result.job.key] = report
                merge_triage(spec, agent_a, agent_b, report)
                if checkpoint is not None:
                    checkpoint.save_pair(spec, report)
            else:
                job_failures.append(result.failure)
            if checkpoint is not None:
                checkpoint.append(self._journal_record(result))

        if pair_jobs:
            supervisor.run(pair_jobs, on_result=on_pair_result)

        reports = [reports_by_cell[cell] for cell in ordered_cells
                   if cell in reports_by_cell]

        triage_report: Optional[TriageReport] = None
        corpus_saved = 0
        if triage_index is not None:
            triage_time = sum(
                witness.minimization.wall_time
                for report in reports for witness in report.witnesses
                if witness.minimization is not None)
            triage_report = triage_index.report(triage_time=triage_time,
                                                skipped_pairs=skipped_triage)
            if self.corpus_dir:
                corpus_saved = WitnessCorpus(self.corpus_dir).add_clusters(
                    triage_report.clusters)

        if self.incremental:
            # Report per-run deltas: engines and their counters persist on
            # the instance, and a re-run must not double-count earlier work
            # (same accounting as the exploration cache above).
            solver_stats = self.encodings.aggregated()
            for name, value in solver_stats.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    solver_stats[name] = value - encoding_stats_before.get(name, 0)
        else:
            solver_stats = {"mode": "legacy"}
            for report in reports:
                merge_stat_dicts(solver_stats, report.crosscheck.solver_stats)

        exploration_stats: List[Dict[str, object]] = []
        coverage_sites = 0
        coverage_executed = 0
        coverage_seen = False
        for spec in specs:
            for agent in paired_agents:
                entry = self.cache.peek(agent, spec)
                if entry is None:
                    continue
                engine_stats = entry.report.engine_stats or {}
                row: Dict[str, object] = {
                    "agent": agent,
                    "test": spec.key,
                    "scale": spec.scale,
                    "loaded": entry.loaded,
                    "paths": entry.report.path_count,
                    "strategy": engine_stats.get("strategy"),
                    "workers": engine_stats.get("workers", 1),
                    "solver_queries": engine_stats.get("solver_queries"),
                    "discarded_replays": engine_stats.get("discarded_replays", 0),
                    "truncated": entry.report.truncated,
                    "wall_time": entry.wall_time,
                }
                entry_coverage = entry.report.coverage
                if entry_coverage is not None:
                    coverage_seen = True
                    coverage_sites += entry_coverage.branch_point_count
                    coverage_executed += entry_coverage.executed_branch_point_count
                    row["coverage_fraction"] = entry_coverage.coverage_fraction
                exploration_stats.append(row)

        coverage_summary: Optional[Dict[str, object]] = None
        if coverage_seen:
            coverage_summary = {
                "decision_sites": coverage_sites,
                "executed_branch_points": coverage_executed,
                "coverage_fraction": (coverage_executed / coverage_sites
                                      if coverage_sites else 0.0),
            }

        intern_stats: Dict[str, object] = {
            "hits": table.hits - intern_hits_before,
            "misses": table.misses - intern_misses_before,
            "distinct_terms": table.distinct_terms,
            "memory_bytes": table.memory_bytes(),
            "reset": self.reset_intern,
        }
        run_total = intern_stats["hits"] + intern_stats["misses"]
        intern_stats["hit_rate"] = (intern_stats["hits"] / run_total
                                    if run_total else None)
        intern_stats["simplify_cache_size"] = int(simplify_cache_stats()["size"])

        return CampaignReport(
            tests=[spec.key for spec in specs],
            agents=list(self._agents),
            pairs=pairs,
            reports=reports,
            explorations_run=explorations_run,
            explorations_loaded=loaded_before,
            cache_hits=self.cache.hits - hits_before,
            workers=self.workers,
            total_time=time.perf_counter() - started,
            unused_loaded_agents=[agent for agent in self.cache.loaded_agent_names()
                                  if agent not in paired_agents],
            incremental=self.incremental,
            solver_stats=solver_stats,
            exploration_stats=exploration_stats,
            intern_stats=intern_stats,
            triage=triage_report,
            corpus_dir=self.corpus_dir,
            corpus_saved=corpus_saved,
            coverage=coverage_summary,
            job_failures=job_failures,
            executor_degraded=list(supervisor.degradation_events),
            job_states=job_states,
            checkpoint_dir=self.checkpoint_dir,
            resumed_cells=resumed,
        )

    # ------------------------------------------------------------------
    # Hybrid mode
    # ------------------------------------------------------------------

    def _run_hybrid(self, started: float, specs: Sequence[TestSpec],
                    pairs: Sequence[Pair], paired_agents: Sequence[str],
                    supervisor: JobSupervisor,
                    checkpoint: Optional[CampaignCheckpoint],
                    completed: Dict[Tuple[str, ...], Dict[str, object]],
                    job_failures: List[JobFailure],
                    job_states: Dict[str, int]) -> CampaignReport:
        """One budgeted :class:`HybridHunt` per (test, pair).

        Each hunt keeps its own seed pool, engines and stage scheduler; the
        witnesses of every hunt merge into one campaign-wide triage index so
        clustering (and the optional corpus) spans the whole matrix, exactly
        as in the exhaustive mode.  Hunts are supervised cells like any
        other: per-cell deadlines, retries, checkpointed terminal states.
        """

        import dataclasses

        from repro.hybrid.scheduler import HybridHunt

        # Hunts persist through the campaign corpus below, not individually —
        # per-hunt saves would race and double-write under the worker pool.
        hunt_config = dataclasses.replace(self.hybrid, corpus_dir=None)

        hunts_by_cell: Dict[Tuple[str, ...], object] = {}
        ordered_cells: List[Tuple[str, ...]] = []
        hunt_jobs: List[CampaignJob] = []
        resumed = 0
        for spec in specs:
            for agent_a, agent_b in pairs:
                cell = CampaignCheckpoint.hunt_cell(spec, agent_a, agent_b)
                ordered_cells.append(cell)
                if checkpoint is not None and cell in completed:
                    hunts_by_cell[cell] = checkpoint.load_hunt(spec, agent_a, agent_b)
                    resumed += 1
                    continue

                def thread_fn(spec: TestSpec = spec, agent_a: str = agent_a,
                              agent_b: str = agent_b):
                    hunt = HybridHunt(spec, agent_a, agent_b, config=hunt_config)
                    return hunt.run()

                hunt_jobs.append(CampaignJob(kind="hunt", key=cell,
                                             thread_fn=thread_fn))

        spec_by_cell = {CampaignCheckpoint.hunt_cell(spec, agent_a, agent_b): spec
                        for spec in specs for agent_a, agent_b in pairs}

        def on_hunt_result(result: JobResult) -> None:
            job_states[result.state] = job_states.get(result.state, 0) + 1
            if result.ok:
                hunts_by_cell[result.job.key] = result.value
                if checkpoint is not None:
                    checkpoint.save_hunt(spec_by_cell[result.job.key], result.value)
            else:
                job_failures.append(result.failure)
            if checkpoint is not None:
                checkpoint.append(self._journal_record(result))

        if hunt_jobs:
            supervisor.run(hunt_jobs, on_result=on_hunt_result)

        hunts = [hunts_by_cell[cell] for cell in ordered_cells
                 if cell in hunts_by_cell]

        triage_index = TriageIndex()
        for hunt in hunts:
            triage_index.add_all(hunt.witnesses)
        triage_report = triage_index.report(
            triage_time=sum(hunt.stats.wall_time for hunt in hunts))
        corpus_saved = 0
        if self.corpus_dir:
            corpus_saved = WitnessCorpus(self.corpus_dir).add_clusters(
                triage_report.clusters)

        return CampaignReport(
            tests=[spec.key for spec in specs],
            agents=list(self._agents),
            pairs=list(pairs),
            reports=[],
            explorations_run=0,
            explorations_loaded=0,
            cache_hits=0,
            workers=self.workers,
            total_time=time.perf_counter() - started,
            incremental=False,
            solver_stats={"mode": "hybrid"},
            triage=triage_report,
            corpus_dir=self.corpus_dir,
            corpus_saved=corpus_saved,
            hunts=hunts,
            job_failures=job_failures,
            executor_degraded=list(supervisor.degradation_events),
            job_states=job_states,
            checkpoint_dir=self.checkpoint_dir,
            resumed_cells=resumed,
        )
