"""A persistent regression corpus of replay-confirmed witnesses.

Every confirmed, minimized witness a campaign produces can be serialized as a
*witness bundle* (JSON: concrete inputs, both expected traces, the divergence
signature, the solver model for provenance) into a corpus directory.  The
corpus then acts as a fast, solver-free regression suite: ``soft corpus run``
replays every stored bundle against the *current* agent implementations with
the concrete harness only — no symbolic exploration, no SAT queries — and
fails when a stored witness no longer diverges (a behavioural change, fixed
or regressed, that the full pipeline would have to re-derive from scratch).

Bundles are deduplicated by divergence signature: one file per signature,
named after its hash, so repeated campaigns keep the corpus stable and
re-adding a known witness is a no-op unless it is strictly smaller.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.agents.registry import AGENT_REGISTRY
from repro.core.testcase import AgentFactory, resolve_agent_factory
from repro.core.witness import Witness, WitnessCluster
from repro.errors import CorpusError, ReproError
from repro.harness.driver import run_concrete_sequence
from repro.testing.faults import fault_point

__all__ = ["WitnessCorpus", "CorpusRunReport", "CorpusEntryResult"]


def _signature_digest(witness: Witness) -> str:
    """Stable filename hash of a witness's divergence signature."""

    return hashlib.sha1(repr(witness.signature.key()).encode("utf-8")).hexdigest()[:12]


@dataclass
class CorpusEntryResult:
    """Outcome of replaying one stored witness against the current agents."""

    path: str
    test_key: str
    agent_a: str
    agent_b: str
    #: ``confirmed`` — diverged with the stored signature;
    #: ``trace-changed`` — same signature but the traces themselves moved;
    #: ``signature-drift`` — still diverging, but elsewhere / differently;
    #: ``stale`` — no divergence any more (the regression-suite failure);
    #: ``corrupt`` — the bundle file is truncated or not a witness bundle
    #: (skipped and recorded; one bad file never aborts the whole run);
    #: ``error`` — the bundle loaded but could not be replayed.
    status: str
    detail: str = ""
    wall_time: float = 0.0

    @property
    def diverged(self) -> bool:
        return self.status in ("confirmed", "trace-changed", "signature-drift")

    def summary_row(self) -> Dict[str, object]:
        return {
            "file": os.path.basename(self.path),
            "test": self.test_key,
            "agent_a": self.agent_a,
            "agent_b": self.agent_b,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass
class CorpusRunReport:
    """Result of replaying a whole corpus: per-entry statuses plus throughput."""

    directory: str
    entries: List[CorpusEntryResult] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def replayed(self) -> int:
        return len(self.entries)

    @property
    def ok(self) -> bool:
        """True when every stored witness still replay-diverges."""

        return all(entry.diverged for entry in self.entries)

    @property
    def stale(self) -> List[CorpusEntryResult]:
        return [entry for entry in self.entries if entry.status == "stale"]

    @property
    def errors(self) -> List[CorpusEntryResult]:
        return [entry for entry in self.entries if entry.status == "error"]

    @property
    def corrupt(self) -> List[CorpusEntryResult]:
        return [entry for entry in self.entries if entry.status == "corrupt"]

    @property
    def witnesses_per_sec(self) -> float:
        return self.replayed / self.wall_time if self.wall_time > 0 else 0.0

    def count(self, status: str) -> int:
        return sum(1 for entry in self.entries if entry.status == status)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": "soft/corpus-run/v1",
            "directory": self.directory,
            "replayed": self.replayed,
            "ok": self.ok,
            "confirmed": self.count("confirmed"),
            "trace_changed": self.count("trace-changed"),
            "signature_drift": self.count("signature-drift"),
            "stale": self.count("stale"),
            "corrupt": self.count("corrupt"),
            "errors": self.count("error"),
            "wall_time": self.wall_time,
            "witnesses_per_sec": self.witnesses_per_sec,
            #: By construction: corpus replay never touches the solver stack.
            "solver_queries": 0,
            "entries": [entry.summary_row() for entry in self.entries],
        }

    def describe(self) -> str:
        lines = [
            "corpus run: %d witness(es) replayed from %s in %.2fs (%.0f/s), "
            "0 solver queries"
            % (self.replayed, self.directory, self.wall_time, self.witnesses_per_sec),
        ]
        for entry in self.entries:
            marker = "ok " if entry.diverged else "FAIL"
            lines.append("  %s %-14s %s~%s %-16s %s"
                         % (marker, entry.test_key, entry.agent_a, entry.agent_b,
                            entry.status, entry.detail))
        if not self.ok:
            parts = []
            if self.stale:
                parts.append("%d stored witness(es) no longer diverge" % len(self.stale))
            if self.corrupt:
                parts.append("%d bundle(s) corrupt/truncated (skipped)"
                             % len(self.corrupt))
            if self.errors:
                parts.append("%d bundle(s) could not be replayed" % len(self.errors))
            lines.append("  FAIL: " + ", ".join(parts))
        return "\n".join(lines)


class WitnessCorpus:
    """A directory of witness bundles usable as a solver-free regression suite."""

    BUNDLE_SUFFIX = ".witness.json"

    def __init__(self, directory: str, create: bool = True) -> None:
        self.directory = str(directory)
        # Parsed-bundle cache keyed by path; entries are validated against
        # the file's (mtime, size) stamp so an on-disk change (re-add, manual
        # edit) is picked up and a stale parse is never replayed.  Replay
        # only *reads* witnesses, so sharing the parsed object across rounds
        # is safe — repeated ``run()`` calls skip JSON parsing entirely.
        self._bundle_cache: Dict[str, Tuple[Tuple[float, int], Witness]] = {}
        if create:
            try:
                os.makedirs(self.directory, exist_ok=True)
            except OSError as exc:
                raise CorpusError("cannot create corpus directory %s: %s"
                                  % (self.directory, exc))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def path_for(self, witness: Witness) -> str:
        name = "%s-%s-vs-%s-%s%s" % (witness.test_key, witness.agent_a,
                                     witness.agent_b, _signature_digest(witness),
                                     self.BUNDLE_SUFFIX)
        return os.path.join(self.directory, name)

    def paths(self) -> List[str]:
        """Sorted bundle paths currently stored in the corpus directory."""

        try:
            names = sorted(name for name in os.listdir(self.directory)
                           if name.endswith(self.BUNDLE_SUFFIX))
        except OSError as exc:
            raise CorpusError("cannot list corpus directory %s: %s"
                              % (self.directory, exc))
        return [os.path.join(self.directory, name) for name in names]

    def __len__(self) -> int:
        return len(self.paths())

    def add(self, witness: Witness, overwrite: bool = False) -> Tuple[str, bool]:
        """Store one witness bundle; returns (path, whether a file was written).

        One bundle is kept per divergence signature.  An existing bundle is
        only replaced when *overwrite* is set or the new witness is strictly
        smaller (so repeated campaigns monotonically improve the corpus).
        """

        from repro.core.artifacts import save_witness_bundle

        path = self.path_for(witness)
        if os.path.exists(path) and not overwrite:
            try:
                existing = self._load_bundle(path)
            except (ReproError, ValueError, KeyError, TypeError):
                existing = None  # unreadable bundle: replace it
            if existing is not None and existing.size_key() <= witness.size_key():
                return path, False
        save_witness_bundle(witness, path)
        if fault_point("corpus.save", path) == "corrupt":
            # Injected fault: die mid-write, leaving a truncated bundle.
            with open(path, "w") as handle:
                handle.write('{"format": "soft/witness-bundle/v1", "tr')
            self._bundle_cache.pop(path, None)
        return path, True

    def add_clusters(self, clusters: List[WitnessCluster],
                     confirmed_only: bool = True) -> int:
        """Store each cluster's minimized representative; returns files written."""

        written = 0
        for cluster in clusters:
            representative = cluster.representative
            if confirmed_only and not representative.confirmed:
                continue
            _, added = self.add(representative)
            written += 1 if added else 0
        return written

    def _load_bundle(self, path: str) -> Witness:
        """Load one bundle through the (mtime, size)-validated cache."""

        from repro.core.artifacts import load_witness_bundle

        fault_point("corpus.load", path)
        try:
            stat = os.stat(path)
            stamp: Optional[Tuple[float, int]] = (stat.st_mtime, stat.st_size)
        except OSError:
            stamp = None
        if stamp is not None:
            cached = self._bundle_cache.get(path)
            if cached is not None and cached[0] == stamp:
                return cached[1]
        witness = load_witness_bundle(path)
        if stamp is not None:
            self._bundle_cache[path] = (stamp, witness)
        return witness

    def load(self) -> List[Witness]:
        """Load every stored bundle (sorted by filename for determinism)."""

        return [self._load_bundle(path) for path in self.paths()]

    # ------------------------------------------------------------------
    # Solver-free regression replay
    # ------------------------------------------------------------------

    def run(self, agent_factory: Optional[AgentFactory] = None,
            agent_options: Optional[Dict[str, Dict[str, object]]] = None,
            ) -> CorpusRunReport:
        """Replay every stored witness against the current agents.

        Fully concrete: each bundle's materialized inputs are fed to fresh
        agent instances through the concrete harness and the traces compared.
        No symbolic exploration and no solver query is ever issued — the
        corpus is the fast regression path.
        """

        factory = resolve_agent_factory(agent_factory, agent_options)
        report = CorpusRunReport(directory=self.directory)
        started = time.perf_counter()
        for path in self.paths():
            report.entries.append(self._run_one(path, factory, agent_factory is None))
        report.wall_time = time.perf_counter() - started
        return report

    def _run_one(self, path: str, factory: AgentFactory,
                 registry_factory: bool) -> CorpusEntryResult:
        entry_started = time.perf_counter()
        try:
            witness = self._load_bundle(path)
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            # A truncated or garbage file is recorded and skipped; the rest
            # of the corpus still replays (the run still reports not-ok).
            return CorpusEntryResult(path=path, test_key="?", agent_a="?", agent_b="?",
                                     status="corrupt",
                                     detail="corrupt bundle: %s" % exc)
        result = CorpusEntryResult(path=path, test_key=witness.test_key,
                                   agent_a=witness.agent_a, agent_b=witness.agent_b,
                                   status="error")
        if registry_factory:
            missing = [name for name in (witness.agent_a, witness.agent_b)
                       if name not in AGENT_REGISTRY]
            if missing:
                result.detail = "agent(s) not registered: %s" % ", ".join(missing)
                result.wall_time = time.perf_counter() - entry_started
                return result
        try:
            run_a = run_concrete_sequence(factory(witness.agent_a), witness.testcase.inputs)
            run_b = run_concrete_sequence(factory(witness.agent_b), witness.testcase.inputs)
        # soft-lint: disable=broad-except -- replay executes arbitrary agent code; any crash is this entry's result, not ours
        except Exception as exc:
            result.detail = "replay failed: %s" % exc
            result.wall_time = time.perf_counter() - entry_started
            return result

        diff = run_a.trace.diff(run_b.trace)
        if not diff.diverged:
            result.status = "stale"
            result.detail = "replay no longer diverges"
        elif not witness.signature.matches_diff(diff):
            result.status = "signature-drift"
            result.detail = diff.describe()
        elif (run_a.trace != witness.replay.run_a.trace
              or run_b.trace != witness.replay.run_b.trace):
            result.status = "trace-changed"
            result.detail = "divergence preserved but traces moved"
        else:
            result.status = "confirmed"
            result.detail = witness.signature.short()
        result.wall_time = time.perf_counter() - entry_started
        return result
