"""SOFT core: the paper's primary contribution.

The pipeline has three stages, matching §3 and §4 of the paper:

1. :mod:`repro.core.explorer` — Phase 1: symbolically execute one agent with a
   test specification from :mod:`repro.core.tests_catalog`, producing one
   (path condition, normalized output trace) record per explored path.
2. :mod:`repro.core.grouping` — group path conditions by identical output
   trace (the paper's *group* tool).
3. :mod:`repro.core.crosscheck` — for every pair of differing outputs across
   two agents, ask the solver whether a common input exists (the paper's
   *inconsistency finder*), then build and replay a concrete test case
   (:mod:`repro.core.testcase`).

:class:`repro.core.soft.SOFT` wraps the three stages behind one call.
"""

from repro.core.events import (
    AgentCrashEvent,
    ControllerMessageEvent,
    DataplaneOutEvent,
    Event,
    ProbeDroppedEvent,
)
from repro.core.trace import OutputTrace, normalize_events
from repro.core.tests_catalog import TestSpec, catalog, get_test
from repro.core.explorer import AgentExplorationReport, explore_agent
from repro.core.grouping import GroupedResults, group_paths
from repro.core.crosscheck import CrosscheckReport, Inconsistency, find_inconsistencies
from repro.core.testcase import ConcreteTestCase, ReplayOutcome, build_testcase, replay_testcase
from repro.core.witness import (
    DivergenceSignature,
    TriageReport,
    Witness,
    WitnessCluster,
    build_witness,
    minimize_witness,
)
from repro.core.corpus import CorpusRunReport, WitnessCorpus
from repro.core.soft import SOFT, SoftReport

__all__ = [
    "Event",
    "ControllerMessageEvent",
    "DataplaneOutEvent",
    "AgentCrashEvent",
    "ProbeDroppedEvent",
    "OutputTrace",
    "normalize_events",
    "TestSpec",
    "catalog",
    "get_test",
    "AgentExplorationReport",
    "explore_agent",
    "GroupedResults",
    "group_paths",
    "CrosscheckReport",
    "Inconsistency",
    "find_inconsistencies",
    "ConcreteTestCase",
    "ReplayOutcome",
    "build_testcase",
    "replay_testcase",
    "Witness",
    "WitnessCluster",
    "DivergenceSignature",
    "TriageReport",
    "build_witness",
    "minimize_witness",
    "WitnessCorpus",
    "CorpusRunReport",
    "SOFT",
    "SoftReport",
]
