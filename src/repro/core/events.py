"""Externally observable events emitted by an agent under test.

An *output trace* (the thing SOFT compares across agents) is a sequence of
these events.  Only externally observable behaviour is recorded — OpenFlow
messages sent to the controller, packets emitted on data-plane ports, and the
agent process terminating — matching §3.3 of the paper.  Internal state is
never inspected directly; it is probed with concrete packets instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.openflow.messages import OpenFlowMessage
from repro.wire.fields import FieldValue, field_repr

__all__ = [
    "Event",
    "ControllerMessageEvent",
    "DataplaneOutEvent",
    "AgentCrashEvent",
    "ProbeDroppedEvent",
]


@dataclass
class Event:
    """Base class of trace events."""

    def normalized(self) -> Tuple:
        """A hashable, comparison-ready rendering of the event.

        Normalization removes data for which spurious differences are expected
        (transaction ids chosen by the agent, buffer ids, free-text strings in
        description stats) per §3.3 "Normalizing results".
        """

        raise NotImplementedError


@dataclass
class ControllerMessageEvent(Event):
    """The agent sent an OpenFlow message to the controller."""

    message: OpenFlowMessage
    #: Index of the input (message or probe) being processed when this was sent.
    input_index: int = -1

    def normalized(self) -> Tuple:
        from repro.core.trace import normalize_message

        return ("ctrl_msg", self.input_index, normalize_message(self.message))


@dataclass
class DataplaneOutEvent(Event):
    """The agent emitted a packet on a data-plane port."""

    port: FieldValue
    frame_summary: str
    length: int = 0
    input_index: int = -1

    def normalized(self) -> Tuple:
        return ("dp_out", self.input_index, field_repr(self.port), self.frame_summary, self.length)


@dataclass
class AgentCrashEvent(Event):
    """The agent terminated abnormally while processing an input."""

    reason: str = "crash"
    input_index: int = -1

    def normalized(self) -> Tuple:
        # The crash *reason* is implementation-specific wording; the observable
        # fact is that the agent died while processing this input.
        return ("crash", self.input_index)


@dataclass
class ProbeDroppedEvent(Event):
    """A probe packet produced no output at all (logged explicitly, §3.3)."""

    input_index: int = -1

    def normalized(self) -> Tuple:
        return ("probe_dropped", self.input_index)
