"""Baseline testing approaches SOFT is compared against.

* :mod:`repro.baselines.oftest` — an OFTest-style suite of manually written,
  fully concrete test cases (the "local testing" the paper's introduction
  argues is not exhaustive).
* :mod:`repro.baselines.fuzzer` — a differential random fuzzer: the same
  randomly generated concrete messages are fed to two agents and their traces
  compared.  It finds *some* of the divergences SOFT finds, with no
  completeness guarantee — a useful contrast for the evaluation discussion.
"""

from repro.baselines.oftest import OFTestCase, OFTestResult, default_suite, run_suite
from repro.baselines.fuzzer import DifferentialFuzzer, FuzzDivergence, FuzzReport

__all__ = [
    "OFTestCase",
    "OFTestResult",
    "default_suite",
    "run_suite",
    "DifferentialFuzzer",
    "FuzzDivergence",
    "FuzzReport",
]
