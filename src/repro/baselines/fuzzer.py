"""Differential random fuzzing baseline.

The fuzzer generates concrete OpenFlow messages with random field values
(valid structure, arbitrary contents — comparable to structure-aware black-box
fuzzing), feeds the *same* messages to two agents, and records every pair of
divergent traces.  It needs no symbolic machinery, but it only samples the
input space: the probability of hitting, say, exactly ``OFPP_CONTROLLER`` in a
16-bit port field is 2^-16 per try.  The benchmark
``benchmarks/test_baseline_comparison.py`` quantifies this against SOFT.

Two properties make fuzz runs first-class citizens of the witness pipeline:

* the RNG is injectable (``rng=``), so a caller — notably the hybrid
  scheduler — can share one seeded :class:`random.Random` across stages and
  reproduce a whole campaign from a single seed; there is no module-global
  randomness anywhere;
* every :class:`FuzzDivergence` records the concrete :data:`InputSequence`
  that produced it, so a divergence can be promoted to a full
  :class:`~repro.core.witness.Witness` (:func:`promote_divergence`), replayed,
  minimized and persisted in a corpus exactly like a symbex-found one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.agents import make_agent
from repro.harness.driver import run_concrete_sequence
from repro.openflow import constants as c
from repro.openflow.actions import ActionOutput, RawAction
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, PacketOut, QueueGetConfigRequest, StatsRequest
from repro.packetlib.builder import build_tcp_packet
from repro.wire.buffer import SymBuffer

__all__ = ["DifferentialFuzzer", "FuzzDivergence", "FuzzReport",
           "promote_divergence"]

InputSequence = List[Tuple[str, object]]

#: Resolves an agent name to a fresh instance (the fuzzer needs one per run).
AgentFactory = Callable[[str], object]


@dataclass
class FuzzDivergence:
    """One random input on which the two agents behaved differently."""

    iteration: int
    description: str
    trace_a: str
    trace_b: str
    #: The concrete input sequence that triggered the divergence — enough to
    #: replay it, promote it to a Witness, minimize it, or store it in a
    #: corpus (the formatted traces above are for humans only).
    inputs: InputSequence = field(default_factory=list)


@dataclass
class FuzzReport:
    """Aggregate result of one fuzzing campaign."""

    agent_a: str
    agent_b: str
    iterations: int
    divergences: List[FuzzDivergence] = field(default_factory=list)

    @property
    def divergence_count(self) -> int:
        return len(self.divergences)

    @property
    def divergence_rate(self) -> float:
        return self.divergence_count / self.iterations if self.iterations else 0.0


def promote_divergence(divergence: FuzzDivergence, agent_a: str, agent_b: str,
                       agent_factory: Optional[AgentFactory] = None,
                       test_key: Optional[str] = None):
    """Promote a fuzz divergence to a replay-confirmed :class:`Witness`.

    Re-runs the recorded input sequence on fresh agent instances (so the
    witness carries a clean replay, not the fuzz-loop traces), wraps it in a
    :class:`ConcreteTestCase` with an empty solver model — a fuzz input *is*
    its own materialization — and computes the divergence signature from the
    replay diff.  The result drops into TriageIndex/WitnessCorpus unchanged.
    """

    from repro.core.testcase import ConcreteTestCase, ReplayOutcome, resolve_agent_factory
    from repro.core.tests_catalog import current_scale
    from repro.core.witness import DivergenceSignature, Witness
    from repro.errors import WitnessError

    if not divergence.inputs:
        raise WitnessError(
            "fuzz divergence %r carries no recorded inputs; was it produced "
            "by a pre-PR6 fuzzer?" % (divergence.description,))
    factory = resolve_agent_factory(agent_factory)
    # Hyphen, not slash: the key becomes part of corpus bundle file names.
    key = test_key or "fuzz-%s" % divergence.description.split("(", 1)[0]
    testcase = ConcreteTestCase(test_key=key, assignment={},
                                inputs=list(divergence.inputs))
    run_a = run_concrete_sequence(factory(agent_a), testcase.inputs)
    run_b = run_concrete_sequence(factory(agent_b), testcase.inputs)
    replay = ReplayOutcome(testcase=testcase, run_a=run_a, run_b=run_b)
    signature = DivergenceSignature.from_diff(key, agent_a, agent_b, replay.diff())
    return Witness(
        test_key=key,
        scale=current_scale(),
        agent_a=agent_a,
        agent_b=agent_b,
        assignment={},
        testcase=testcase,
        replay=replay,
        signature=signature,
    )


class DifferentialFuzzer:
    """Feed identical random messages to two agents and compare their traces.

    *rng* injects the random source (a seeded :class:`random.Random`); when
    omitted, one is built from *seed*.  *agent_factory* overrides how agent
    names become instances (defaults to the registry), which lets callers
    fuzz unregistered in-test agents.

    *interesting_values* is an optional pool of constants (typically mined
    from the agents' comparisons by
    :func:`repro.analysis.decision_map.build_decision_map`): with probability
    *interesting_prob* per field, a pool value (masked to the field width) is
    drawn instead of a uniform one.  Hitting a compared 16-bit constant by
    uniform chance is a 2^-16 lottery ticket; drawing it from the pool is
    how static analysis pays the fuzzer back.  With no pool, the draw
    sequence is bit-for-bit identical to the pool-less fuzzer for the same
    seed.
    """

    def __init__(self, agent_a: str, agent_b: str, seed: int = 0,
                 rng: Optional[random.Random] = None,
                 agent_factory: Optional[AgentFactory] = None,
                 interesting_values: Optional[Sequence[int]] = None,
                 interesting_prob: float = 0.25) -> None:
        self.agent_a = agent_a
        self.agent_b = agent_b
        self.random = rng if rng is not None else random.Random(seed)
        self._factory = agent_factory if agent_factory is not None else make_agent
        self.interesting_values = list(interesting_values or [])
        self.interesting_prob = interesting_prob

    # ------------------------------------------------------------------
    # Random input generation
    # ------------------------------------------------------------------

    def _field(self, bits: int) -> int:
        """One random field value, biased toward the interesting pool."""

        rng = self.random
        if self.interesting_values and rng.random() < self.interesting_prob:
            return rng.choice(self.interesting_values) & ((1 << bits) - 1)
        return rng.randrange(0, 1 << bits)

    def random_packet_out(self) -> Tuple[str, InputSequence]:
        rng = self.random
        port = self._field(16)
        buffer_id = rng.choice([c.OFP_NO_BUFFER, rng.randrange(0, 0x100000000)])
        action_type = rng.randrange(0, 13)
        action_arg = self._field(16)
        message = PacketOut(
            xid=rng.randrange(1, 1 << 31),
            buffer_id=buffer_id,
            in_port=c.OFPP_NONE,
            actions=[
                RawAction(action_type=action_type, length=8, arg16_a=action_arg, arg16_b=0),
                ActionOutput(port=port, max_len=64),
            ],
            data=build_tcp_packet().to_bytes(),
        )
        description = "packet_out(port=%#x,buffer=%#x,action=%d,arg=%#x)" % (
            port, buffer_id, action_type, action_arg)
        return description, [("control", message.pack())]

    def random_flow_mod(self) -> Tuple[str, InputSequence]:
        rng = self.random
        command = rng.randrange(0, 6)
        out_port = self._field(16)
        flags = rng.randrange(0, 8)
        wildcards = rng.choice([c.OFPFW_ALL, c.OFPFW_ALL & ~c.OFPFW_IN_PORT, 0])
        match = Match(wildcards=wildcards, in_port=rng.randrange(0, 32),
                      dl_type=c.ETH_TYPE_IP, nw_proto=c.IPPROTO_TCP,
                      dl_vlan=c.OFP_VLAN_NONE, tp_src=1234, tp_dst=80)
        message = FlowMod(
            xid=rng.randrange(1, 1 << 31), match=match, command=command, flags=flags,
            buffer_id=rng.choice([c.OFP_NO_BUFFER, rng.randrange(0, 256)]),
            out_port=c.OFPP_NONE,
            actions=[ActionOutput(port=out_port, max_len=0)],
        )
        probe = build_tcp_packet(tp_src=1234, tp_dst=80)
        description = "flow_mod(cmd=%d,out_port=%#x,flags=%d,wc=%#x)" % (
            command, out_port, flags, wildcards)
        return description, [("control", message.pack()), ("probe", (1, probe))]

    def random_stats_request(self) -> Tuple[str, InputSequence]:
        rng = self.random
        stats_type = rng.randrange(0, 8)
        body = SymBuffer()
        body.write_bytes(Match.wildcard_all().pack())
        body.write_u8(0xFF)
        body.pad(1)
        body.write_u16(c.OFPP_NONE)
        message = StatsRequest(xid=rng.randrange(1, 1 << 31), stats_type=stats_type,
                               stats_body=body)
        return "stats_request(type=%d)" % stats_type, [("control", message.pack())]

    def random_queue_config(self) -> Tuple[str, InputSequence]:
        rng = self.random
        port = rng.randrange(0, 0x10000)
        message = QueueGetConfigRequest(xid=rng.randrange(1, 1 << 31), port=port)
        return "queue_get_config(port=%#x)" % port, [("control", message.pack())]

    def random_input(self) -> Tuple[str, InputSequence]:
        generator = self.random.choice([
            self.random_packet_out,
            self.random_flow_mod,
            self.random_stats_request,
            self.random_queue_config,
        ])
        return generator()

    # ------------------------------------------------------------------
    # Campaign
    # ------------------------------------------------------------------

    def run_one(self, description: str, inputs: InputSequence,
                iteration: int = 0) -> Optional[FuzzDivergence]:
        """Replay one concrete input on both agents; a divergence or None."""

        run_a = run_concrete_sequence(self._factory(self.agent_a), inputs)
        run_b = run_concrete_sequence(self._factory(self.agent_b), inputs)
        if run_a.trace == run_b.trace:
            return None
        return FuzzDivergence(
            iteration=iteration,
            description=description,
            trace_a=run_a.trace.short(limit=4),
            trace_b=run_b.trace.short(limit=4),
            inputs=list(inputs),
        )

    def run(self, iterations: int = 100) -> FuzzReport:
        """Run a fuzzing campaign and collect trace divergences."""

        report = FuzzReport(agent_a=self.agent_a, agent_b=self.agent_b, iterations=iterations)
        for iteration in range(iterations):
            description, inputs = self.random_input()
            divergence = self.run_one(description, inputs, iteration=iteration)
            if divergence is not None:
                report.divergences.append(divergence)
        return report
