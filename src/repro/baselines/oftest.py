"""An OFTest-style suite of manually written concrete test cases.

Each case fixes a concrete input sequence and checks a hand-written
expectation about the observable behaviour — exactly how OFTest [2] and the
default OpenFlow Perl framework operate.  The suite intentionally mirrors the
"basic functionality" level of those tools: running it against all three
agents passes (or fails identically), illustrating the paper's point that
manually composed concrete cases do not surface the corner-case
inconsistencies SOFT finds automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.agents import make_agent
from repro.harness.driver import ConcreteRunResult, run_concrete_sequence
from repro.openflow import constants as c
from repro.openflow.actions import ActionOutput
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierRequest,
    EchoRequest,
    FeaturesRequest,
    FlowMod,
    GetConfigRequest,
    PacketOut,
    SetConfig,
    StatsRequest,
)
from repro.packetlib.builder import build_tcp_packet

__all__ = ["OFTestCase", "OFTestResult", "default_suite", "run_suite"]

InputSequence = List[Tuple[str, object]]


@dataclass
class OFTestCase:
    """A manually written, fully concrete test case."""

    name: str
    description: str
    build_inputs: Callable[[], InputSequence]
    check: Callable[[ConcreteRunResult], bool]


@dataclass
class OFTestResult:
    """Outcome of one case against one agent."""

    case_name: str
    agent_name: str
    passed: bool
    trace_summary: str


def _exact_tcp_match() -> Match:
    return Match.exact_tcp(in_port=1, dl_src=0x00163E000001, dl_dst=0x00163E000002,
                           nw_src=0x0A000001, nw_dst=0x0A000002, tp_src=1234, tp_dst=80)


def _case_echo() -> InputSequence:
    return [("control", EchoRequest(xid=1, data=b"ping").pack())]


def _case_features() -> InputSequence:
    return [("control", FeaturesRequest(xid=2).pack())]


def _case_get_config() -> InputSequence:
    return [("control", GetConfigRequest(xid=3).pack())]


def _case_barrier() -> InputSequence:
    return [("control", BarrierRequest(xid=4).pack())]


def _case_set_config_roundtrip() -> InputSequence:
    return [
        ("control", SetConfig(xid=5, flags=c.OFPC_FRAG_NORMAL, miss_send_len=96).pack()),
        ("control", GetConfigRequest(xid=6).pack()),
    ]


def _case_flow_install_and_forward() -> InputSequence:
    flow_mod = FlowMod(xid=7, match=_exact_tcp_match(), command=c.OFPFC_ADD,
                       priority=0x8000, buffer_id=c.OFP_NO_BUFFER,
                       out_port=c.OFPP_NONE, actions=[ActionOutput(port=2, max_len=0)])
    probe = build_tcp_packet(tp_src=1234, tp_dst=80)
    return [("control", flow_mod.pack()), ("probe", (1, probe))]


def _case_table_miss_packet_in() -> InputSequence:
    probe = build_tcp_packet(tp_src=4321, tp_dst=443)
    return [("probe", (1, probe))]


def _case_packet_out_forward() -> InputSequence:
    message = PacketOut(xid=8, buffer_id=c.OFP_NO_BUFFER, in_port=c.OFPP_NONE,
                        actions=[ActionOutput(port=3, max_len=0)],
                        data=build_tcp_packet().to_bytes())
    return [("control", message.pack())]


def _case_desc_stats() -> InputSequence:
    return [("control", StatsRequest(xid=9, stats_type=c.OFPST_DESC).pack())]


def _case_flow_delete() -> InputSequence:
    add = FlowMod(xid=10, match=_exact_tcp_match(), command=c.OFPFC_ADD, priority=0x8000,
                  buffer_id=c.OFP_NO_BUFFER, out_port=c.OFPP_NONE,
                  actions=[ActionOutput(port=2, max_len=0)])
    delete = FlowMod(xid=11, match=_exact_tcp_match(), command=c.OFPFC_DELETE, priority=0x8000,
                     buffer_id=c.OFP_NO_BUFFER, out_port=c.OFPP_NONE, actions=[])
    probe = build_tcp_packet(tp_src=1234, tp_dst=80)
    return [("control", add.pack()), ("control", delete.pack()), ("probe", (1, probe))]


def _has_message(result: ConcreteRunResult, kind: str) -> bool:
    return any(item[0] == "ctrl_msg" and item[2][0] == kind for item in result.trace.items)


def _has_dataplane_output(result: ConcreteRunResult, port: int = None) -> bool:
    for item in result.trace.items:
        if item[0] != "dp_out":
            continue
        if port is None or item[2] == str(port):
            return True
    return False


def default_suite() -> List[OFTestCase]:
    """The manually composed baseline suite (basic functionality only)."""

    return [
        OFTestCase("echo_reply", "Echo requests are answered with an echo reply.",
                   _case_echo, lambda r: _has_message(r, "ECHO_REPLY")),
        OFTestCase("features_reply", "Features requests are answered.",
                   _case_features, lambda r: _has_message(r, "FEATURES_REPLY")),
        OFTestCase("get_config_reply", "Get-config requests are answered.",
                   _case_get_config, lambda r: _has_message(r, "GET_CONFIG_REPLY")),
        OFTestCase("barrier_reply", "Barrier requests are answered.",
                   _case_barrier, lambda r: _has_message(r, "BARRIER_REPLY")),
        OFTestCase("set_config_roundtrip", "SET_CONFIG is reflected by GET_CONFIG.",
                   _case_set_config_roundtrip, lambda r: _has_message(r, "GET_CONFIG_REPLY")),
        OFTestCase("flow_install_and_forward", "An installed exact-match flow forwards a probe.",
                   _case_flow_install_and_forward, lambda r: _has_dataplane_output(r, 2)),
        OFTestCase("table_miss_packet_in", "A table miss produces a PACKET_IN.",
                   _case_table_miss_packet_in, lambda r: _has_message(r, "PACKET_IN")),
        OFTestCase("packet_out_forward", "A PACKET_OUT with an output action emits the packet.",
                   _case_packet_out_forward, lambda r: _has_dataplane_output(r, 3)),
        OFTestCase("desc_stats", "DESC statistics are answered.",
                   _case_desc_stats, lambda r: _has_message(r, "STATS_REPLY")),
        OFTestCase("flow_delete", "Deleting a flow restores table-miss behaviour.",
                   _case_flow_delete, lambda r: _has_message(r, "PACKET_IN")),
    ]


def run_suite(agent_name: str, cases: Sequence[OFTestCase] = None) -> List[OFTestResult]:
    """Run the (given or default) suite against one agent."""

    cases = list(cases) if cases is not None else default_suite()
    results: List[OFTestResult] = []
    for case in cases:
        agent = make_agent(agent_name)
        run = run_concrete_sequence(agent, case.build_inputs())
        results.append(OFTestResult(
            case_name=case.name,
            agent_name=agent_name,
            passed=bool(case.check(run)),
            trace_summary=run.trace.short(limit=4),
        ))
    return results
