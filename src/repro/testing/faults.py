"""A deterministic fault-injection harness for the campaign runtime.

The production code exposes *named fault sites* — cheap
:func:`fault_point` calls at the places campaigns have actually died in
the wild (agent message handling, Phase-1 exploration, solver queries,
corpus I/O).  A :class:`FaultPlan` is a list of :class:`FaultSpec`
entries describing what to inject where:

* ``raise`` — raise :class:`InjectedFault` at the site (a crashing cell);
* ``hang``  — sleep for ``duration`` seconds (a hung cell, which the job
  supervisor must kill at its deadline);
* ``kill``  — die like a segfaulted worker: ``os._exit`` in a worker
  process (breaking the process pool), or :class:`WorkerCrashError` when
  the site runs in the main process (killing it would take the campaign
  down with it — exactly what crash *isolation* must prevent);
* ``corrupt`` — no in-band effect; the site's caller receives the
  directive and corrupts the artifact it was about to produce (e.g. a
  truncated witness bundle).

Everything is deterministic: a spec fires at explicit 1-based *hit
indices* of its (site, match) counter, so "crash the first two attempts,
then succeed" is expressible and replayable.  Counters are per process —
a fresh worker process starts counting from zero, which is what makes
``kill`` specs break a pool on every spawned attempt until the
supervisor degrades to threads.

With no plan installed, a fault point is a single global read — safe to
leave in hot paths.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, WorkerCrashError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_fault_plan",
    "clear_fault_plan",
    "fault_point",
    "install_fault_plan",
    "installed_fault_plan",
    "load_fault_plan",
]

#: Supported injection kinds.
FAULT_KINDS = ("raise", "hang", "kill", "corrupt")

#: Exit code used for injected worker kills (recognizable in worker logs).
KILL_EXIT_CODE = 73

FAULT_PLAN_FORMAT = "soft/fault-plan/v1"


class InjectedFault(ReproError):
    """The exception a ``raise`` fault spec throws at its site."""


@dataclass
class FaultSpec:
    """One deterministic injection: *what* to do, *where*, and *when*."""

    #: Fault site name (``"agent.handle"``, ``"phase1"``, ``"solver.check"``,
    #: ``"corpus.load"``, ``"corpus.save"``, ...).
    site: str
    kind: str = "raise"
    #: Substring that must occur in the site's context string (agent name,
    #: ``agent:test`` cell, bundle path...).  Empty matches everything.
    match: str = ""
    #: 1-based hit indices of the (site, match) counter at which to fire.
    hits: Tuple[int, ...] = (1,)
    #: Sleep length for ``hang`` faults (pick it larger than the cell
    #: timeout under test; the sleeping thread is abandoned, not joined).
    duration: float = 30.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r (valid: %s)"
                             % (self.kind, ", ".join(FAULT_KINDS)))
        self.hits = tuple(int(h) for h in self.hits)

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "kind": self.kind,
            "match": self.match,
            "hits": list(self.hits),
            "duration": self.duration,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        return cls(
            site=str(data["site"]),
            kind=str(data.get("kind", "raise")),
            match=str(data.get("match", "")),
            hits=tuple(int(h) for h in data.get("hits", (1,))),
            duration=float(data.get("duration", 30.0)),
            message=str(data.get("message", "injected fault")),
        )


class FaultPlan:
    """A set of :class:`FaultSpec` entries with per-spec hit counters.

    Thread-safe and picklable: worker threads share the installed plan's
    counters; worker *processes* re-install a copy and count from zero
    (documented semantics — see the module docstring).
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = int(seed)
        self.main_pid = os.getpid()
        self._lock = threading.Lock()
        self._counters: Dict[int, int] = {}
        #: Injections actually performed: (site, context, kind, hit) tuples.
        self.fired: List[Tuple[str, str, str, int]] = []
        #: Injectable for tests; ``hang`` sleeps through it.
        self.sleep: Callable[[float], None] = time.sleep

    # Pickling ships the specs and the originating main pid (so a ``kill``
    # spec still knows it is running in a worker); counters restart.
    def __reduce__(self):
        return (_rebuild_plan, (self.specs, self.seed, self.main_pid))

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": FAULT_PLAN_FORMAT,
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        tag = data.get("format", FAULT_PLAN_FORMAT)
        if tag != FAULT_PLAN_FORMAT:
            raise ValueError("unsupported fault plan format %r (expected %r)"
                             % (tag, FAULT_PLAN_FORMAT))
        return cls(specs=[FaultSpec.from_dict(s) for s in data.get("specs", [])],
                   seed=int(data.get("seed", 0)))

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def fire(self, site: str, context: str = "") -> Optional[str]:
        """Evaluate every matching spec for one site visit.

        Performs ``raise``/``hang``/``kill`` effects in-band; returns
        ``"corrupt"`` when a corrupt spec fired (the caller corrupts its
        own artifact), else ``None``.
        """

        directive: Optional[str] = None
        for index, spec in enumerate(self.specs):
            if spec.site != site or spec.match not in context:
                continue
            with self._lock:
                hit = self._counters.get(index, 0) + 1
                self._counters[index] = hit
                due = hit in spec.hits
                if due:
                    self.fired.append((site, context, spec.kind, hit))
            if not due:
                continue
            if spec.kind == "raise":
                raise InjectedFault("%s at %s[%s] (hit %d)"
                                    % (spec.message, site, context, hit))
            if spec.kind == "hang":
                self.sleep(spec.duration)
            elif spec.kind == "kill":
                if os.getpid() != self.main_pid:
                    # A real worker-process death: no cleanup, no excuses.
                    os._exit(KILL_EXIT_CODE)
                raise WorkerCrashError(
                    "injected worker kill at %s[%s] (hit %d; in-process, so "
                    "raised instead of killing the main interpreter)"
                    % (site, context, hit))
            elif spec.kind == "corrupt":
                directive = "corrupt"
        return directive


def _rebuild_plan(specs: List[FaultSpec], seed: int,
                  main_pid: Optional[int] = None) -> FaultPlan:
    """Unpickle helper: a worker process both rebuilds AND installs the plan,
    so fault sites inside the worker see it without extra wiring."""

    plan = FaultPlan(specs, seed=seed)
    if main_pid is not None:
        plan.main_pid = main_pid
    install_fault_plan(plan)
    return plan


# ---------------------------------------------------------------------------
# Process-global installation
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install *plan* process-globally (``None`` clears it)."""

    global _ACTIVE
    _ACTIVE = plan


def clear_fault_plan() -> None:
    install_fault_plan(None)


def active_fault_plan() -> Optional[FaultPlan]:
    return _ACTIVE


class installed_fault_plan:
    """Context manager: install a plan for the block, restore the old one."""

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self.plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> Optional[FaultPlan]:
        self._previous = active_fault_plan()
        install_fault_plan(self.plan)
        return self.plan

    def __exit__(self, *exc_info: object) -> None:
        install_fault_plan(self._previous)


def fault_point(site: str, context: str = "") -> Optional[str]:
    """Evaluate the active fault plan (if any) at a named site.

    Returns ``"corrupt"`` when the caller should corrupt the artifact it is
    producing; raises/hangs/kills in-band for the other kinds.  A no-op
    single global read when no plan is installed.
    """

    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site, context)


def load_fault_plan(path: str) -> FaultPlan:
    """Load a JSON fault plan (the ``soft campaign --fault-plan`` format)."""

    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ValueError("cannot read fault plan %s: %s" % (path, exc))
    except json.JSONDecodeError as exc:
        raise ValueError("fault plan %s is not valid JSON: %s" % (path, exc))
    return FaultPlan.from_dict(data)
