"""Deterministic chaos-testing utilities for the repro stack.

This package ships with the library (not just the test suite) so that CI
jobs, examples and downstream users can drive the same fault-injection
harness the campaign runtime is verified with::

    from repro.testing import FaultPlan, FaultSpec, installed_fault_plan

    plan = FaultPlan([FaultSpec(site="phase1", kind="hang", match="ovs")])
    with installed_fault_plan(plan):
        Campaign(...).run()
"""

from repro.testing.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_fault_plan,
    clear_fault_plan,
    fault_point,
    install_fault_plan,
    installed_fault_plan,
    load_fault_plan,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_fault_plan",
    "clear_fault_plan",
    "fault_point",
    "install_fault_plan",
    "installed_fault_plan",
    "load_fault_plan",
]
