"""Data-plane packet substrate.

Probe packets (§3.3 of the paper) and the payloads carried inside
``Packet Out`` / ``Packet In`` messages are ordinary Ethernet frames.  This
package provides header classes with symbolic-aware ``pack``/``unpack``,
convenience builders for the concrete probes the test catalogue uses, and the
flow-key extraction that switches perform before a flow-table lookup.
"""

from repro.packetlib.headers import (
    ArpHeader,
    EthernetHeader,
    IcmpHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
    VlanTag,
)
from repro.packetlib.builder import (
    build_arp_packet,
    build_ethernet_frame,
    build_tcp_packet,
    build_udp_packet,
    build_vlan_tcp_packet,
)
from repro.packetlib.flowkey import FlowKey, extract_flow_key

__all__ = [
    "EthernetHeader",
    "VlanTag",
    "ArpHeader",
    "Ipv4Header",
    "IcmpHeader",
    "TcpHeader",
    "UdpHeader",
    "build_ethernet_frame",
    "build_tcp_packet",
    "build_udp_packet",
    "build_vlan_tcp_packet",
    "build_arp_packet",
    "FlowKey",
    "extract_flow_key",
]
