"""Convenience builders for the frames used as probes and payloads.

The test catalogue (§5, Table 1) uses two kinds of probes: a plain Ethernet
frame and a TCP/IPv4 frame.  Builders return :class:`SymBuffer` so both
concrete probes and (for the Table 5 "Symbolic Probe" variant) partially
symbolic probes are expressed with the same code.
"""

from __future__ import annotations

from typing import Optional

from repro.openflow import constants as c
from repro.packetlib.headers import (
    ArpHeader,
    EthernetHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
    VlanTag,
)
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue

__all__ = [
    "build_ethernet_frame",
    "build_vlan_tcp_packet",
    "build_tcp_packet",
    "build_udp_packet",
    "build_arp_packet",
    "DEFAULT_SRC_MAC",
    "DEFAULT_DST_MAC",
    "DEFAULT_SRC_IP",
    "DEFAULT_DST_IP",
]

DEFAULT_SRC_MAC = 0x00_16_3E_00_00_01
DEFAULT_DST_MAC = 0x00_16_3E_00_00_02
DEFAULT_SRC_IP = 0x0A_00_00_01   # 10.0.0.1
DEFAULT_DST_IP = 0x0A_00_00_02   # 10.0.0.2


def build_ethernet_frame(dl_src: FieldValue = DEFAULT_SRC_MAC,
                         dl_dst: FieldValue = DEFAULT_DST_MAC,
                         dl_type: FieldValue = 0x88B5,
                         payload: bytes = b"\x00" * 46) -> SymBuffer:
    """A minimal Ethernet frame with an opaque payload (the "Eth probe")."""

    frame = EthernetHeader(dl_dst=dl_dst, dl_src=dl_src, dl_type=dl_type).pack()
    frame.write_bytes(payload)
    return frame


def build_tcp_packet(dl_src: FieldValue = DEFAULT_SRC_MAC,
                     dl_dst: FieldValue = DEFAULT_DST_MAC,
                     nw_src: FieldValue = DEFAULT_SRC_IP,
                     nw_dst: FieldValue = DEFAULT_DST_IP,
                     nw_tos: FieldValue = 0,
                     tp_src: FieldValue = 1234,
                     tp_dst: FieldValue = 80,
                     payload: bytes = b"") -> SymBuffer:
    """A TCP/IPv4/Ethernet frame (the standard probe of the FlowMod tests)."""

    tcp = TcpHeader(src_port=tp_src, dst_port=tp_dst).pack()
    total_length = Ipv4Header.LENGTH + len(tcp) + len(payload)
    ip = Ipv4Header(tos=nw_tos, total_length=total_length, protocol=c.IPPROTO_TCP,
                    src=nw_src, dst=nw_dst).pack()
    eth = EthernetHeader(dl_dst=dl_dst, dl_src=dl_src, dl_type=c.ETH_TYPE_IP).pack()
    frame = eth + ip + tcp
    frame.write_bytes(payload)
    return frame


def build_udp_packet(dl_src: FieldValue = DEFAULT_SRC_MAC,
                     dl_dst: FieldValue = DEFAULT_DST_MAC,
                     nw_src: FieldValue = DEFAULT_SRC_IP,
                     nw_dst: FieldValue = DEFAULT_DST_IP,
                     tp_src: FieldValue = 5353,
                     tp_dst: FieldValue = 53,
                     payload: bytes = b"") -> SymBuffer:
    """A UDP/IPv4/Ethernet frame."""

    udp = UdpHeader(src_port=tp_src, dst_port=tp_dst,
                    length=UdpHeader.LENGTH + len(payload)).pack()
    total_length = Ipv4Header.LENGTH + len(udp) + len(payload)
    ip = Ipv4Header(total_length=total_length, protocol=c.IPPROTO_UDP,
                    src=nw_src, dst=nw_dst).pack()
    eth = EthernetHeader(dl_dst=dl_dst, dl_src=dl_src, dl_type=c.ETH_TYPE_IP).pack()
    frame = eth + ip + udp
    frame.write_bytes(payload)
    return frame


def build_vlan_tcp_packet(vid: FieldValue, pcp: FieldValue = 0,
                          dl_src: FieldValue = DEFAULT_SRC_MAC,
                          dl_dst: FieldValue = DEFAULT_DST_MAC,
                          nw_src: FieldValue = DEFAULT_SRC_IP,
                          nw_dst: FieldValue = DEFAULT_DST_IP,
                          tp_src: FieldValue = 1234,
                          tp_dst: FieldValue = 80) -> SymBuffer:
    """A single-tagged 802.1Q TCP frame."""

    tcp = TcpHeader(src_port=tp_src, dst_port=tp_dst).pack()
    total_length = Ipv4Header.LENGTH + len(tcp)
    ip = Ipv4Header(total_length=total_length, protocol=c.IPPROTO_TCP,
                    src=nw_src, dst=nw_dst).pack()
    eth = EthernetHeader(dl_dst=dl_dst, dl_src=dl_src, dl_type=c.ETH_TYPE_VLAN).pack()
    tag = VlanTag(pcp=pcp, vid=vid, inner_type=c.ETH_TYPE_IP).pack()
    return eth + tag + ip + tcp


def build_arp_packet(dl_src: FieldValue = DEFAULT_SRC_MAC,
                     dl_dst: FieldValue = 0xFFFFFFFFFFFF,
                     spa: FieldValue = DEFAULT_SRC_IP,
                     tpa: FieldValue = DEFAULT_DST_IP,
                     opcode: FieldValue = 1) -> SymBuffer:
    """A broadcast ARP request frame."""

    eth = EthernetHeader(dl_dst=dl_dst, dl_src=dl_src, dl_type=c.ETH_TYPE_ARP).pack()
    arp = ArpHeader(opcode=opcode, sha=dl_src, spa=spa, tha=0, tpa=tpa).pack()
    frame = eth + arp
    frame.pad(max(0, 60 - len(frame)))
    return frame
