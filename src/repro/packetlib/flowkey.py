"""Flow-key extraction: turn a raw frame into the OpenFlow 1.0 match fields.

Both agents call this before a flow-table lookup, the same way both C
implementations ship a ``flow_extract()``.  The extraction itself is not a
source of inconsistencies in the paper, so it is shared; what the agents *do*
with the key (wildcard interpretation, validation, rewriting) is theirs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import PacketParseError
from repro.openflow import constants as c
from repro.packetlib.headers import (
    ArpHeader,
    EthernetHeader,
    IcmpHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
    VlanTag,
)
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue, field_repr

__all__ = ["FlowKey", "extract_flow_key"]


@dataclass
class FlowKey:
    """The 12-tuple (plus in_port) a v1.0 switch matches on."""

    in_port: FieldValue = 0
    dl_src: FieldValue = 0
    dl_dst: FieldValue = 0
    dl_vlan: FieldValue = c.OFP_VLAN_NONE
    dl_vlan_pcp: FieldValue = 0
    dl_type: FieldValue = 0
    nw_tos: FieldValue = 0
    nw_proto: FieldValue = 0
    nw_src: FieldValue = 0
    nw_dst: FieldValue = 0
    tp_src: FieldValue = 0
    tp_dst: FieldValue = 0

    def as_dict(self) -> Dict[str, FieldValue]:
        return {
            "in_port": self.in_port,
            "dl_src": self.dl_src,
            "dl_dst": self.dl_dst,
            "dl_vlan": self.dl_vlan,
            "dl_vlan_pcp": self.dl_vlan_pcp,
            "dl_type": self.dl_type,
            "nw_tos": self.nw_tos,
            "nw_proto": self.nw_proto,
            "nw_src": self.nw_src,
            "nw_dst": self.nw_dst,
            "tp_src": self.tp_src,
            "tp_dst": self.tp_dst,
        }

    def describe(self) -> str:
        """Normalized rendering used in output traces.

        Symbolic field values are rendered as ``*``: the observable fact is
        *which* header fields the packet carries after rewriting, and output
        traces must not split into one class per symbolic expression shape
        (§3.3 "Normalizing results").
        """

        parts = []
        for name, value in self.as_dict().items():
            from repro.wire.fields import is_symbolic_field

            rendered = "*" if is_symbolic_field(value) else field_repr(value)
            parts.append("%s=%s" % (name, rendered))
        return "flow{%s}" % ",".join(parts)


def extract_flow_key(frame: SymBuffer, in_port: FieldValue) -> FlowKey:
    """Parse *frame* into a :class:`FlowKey` (best effort on short frames)."""

    key = FlowKey(in_port=in_port)
    if len(frame) < EthernetHeader.LENGTH:
        raise PacketParseError("frame of %d bytes is too short for Ethernet" % len(frame))
    eth = EthernetHeader.unpack(frame)
    key.dl_src = eth.dl_src
    key.dl_dst = eth.dl_dst
    key.dl_type = eth.dl_type
    offset = EthernetHeader.LENGTH

    dl_type = eth.dl_type
    if isinstance(dl_type, int) and dl_type == c.ETH_TYPE_VLAN:
        if len(frame) - offset >= VlanTag.LENGTH:
            tag = VlanTag.unpack(frame, offset)
            key.dl_vlan = tag.vid
            key.dl_vlan_pcp = tag.pcp
            key.dl_type = tag.inner_type
            dl_type = tag.inner_type
            offset += VlanTag.LENGTH

    if isinstance(dl_type, int) and dl_type == c.ETH_TYPE_IP:
        if len(frame) - offset >= Ipv4Header.LENGTH:
            ip = Ipv4Header.unpack(frame, offset)
            key.nw_tos = ip.tos
            key.nw_proto = ip.protocol
            key.nw_src = ip.src
            key.nw_dst = ip.dst
            l4_offset = offset + Ipv4Header.LENGTH
            protocol = ip.protocol
            if isinstance(protocol, int):
                if protocol == c.IPPROTO_TCP and len(frame) - l4_offset >= TcpHeader.LENGTH:
                    tcp = TcpHeader.unpack(frame, l4_offset)
                    key.tp_src = tcp.src_port
                    key.tp_dst = tcp.dst_port
                elif protocol == c.IPPROTO_UDP and len(frame) - l4_offset >= UdpHeader.LENGTH:
                    udp = UdpHeader.unpack(frame, l4_offset)
                    key.tp_src = udp.src_port
                    key.tp_dst = udp.dst_port
                elif protocol == c.IPPROTO_ICMP and len(frame) - l4_offset >= IcmpHeader.LENGTH:
                    icmp = IcmpHeader.unpack(frame, l4_offset)
                    key.tp_src = icmp.icmp_type
                    key.tp_dst = icmp.code
    elif isinstance(dl_type, int) and dl_type == c.ETH_TYPE_ARP:
        if len(frame) - offset >= ArpHeader.LENGTH:
            arp = ArpHeader.unpack(frame, offset)
            key.nw_proto = arp.opcode
            key.nw_src = arp.spa
            key.nw_dst = arp.tpa
    return key
