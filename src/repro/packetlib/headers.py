"""Packet header structures (Ethernet, 802.1Q, ARP, IPv4, ICMP, TCP, UDP).

Checksums are modelled as constants (zero) on both the build and the parse
side, mirroring the paper's simplification of checksum functions in the
Cloud9 environment model (§4.1): reversing checksums is what constraint
solvers are worst at, and no agent behaviour under test depends on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import PacketParseError
from repro.openflow import constants as c
from repro.wire.buffer import SymBuffer
from repro.wire.fields import FieldValue, as_field, field_repr

__all__ = [
    "EthernetHeader",
    "VlanTag",
    "ArpHeader",
    "Ipv4Header",
    "IcmpHeader",
    "TcpHeader",
    "UdpHeader",
]


def _write_mac(buf: SymBuffer, value: FieldValue) -> None:
    from repro.openflow.match import _mac_bytes

    buf.write_bytes(_mac_bytes(value))


def _read_mac(buf: SymBuffer, offset: int) -> FieldValue:
    from repro.openflow.match import _read_mac

    return _read_mac(buf, offset)


@dataclass
class EthernetHeader:
    """The 14-byte Ethernet II header."""

    dl_dst: FieldValue = 0
    dl_src: FieldValue = 0
    dl_type: FieldValue = c.ETH_TYPE_IP

    LENGTH = 14

    def __post_init__(self) -> None:
        self.dl_dst = as_field(self.dl_dst, 48)
        self.dl_src = as_field(self.dl_src, 48)
        self.dl_type = as_field(self.dl_type, 16)

    def pack(self) -> SymBuffer:
        buf = SymBuffer()
        _write_mac(buf, self.dl_dst)
        _write_mac(buf, self.dl_src)
        buf.write_u16(self.dl_type)
        return buf

    @classmethod
    def unpack(cls, buf: SymBuffer, offset: int = 0) -> "EthernetHeader":
        if len(buf) - offset < cls.LENGTH:
            raise PacketParseError("frame too short for an Ethernet header")
        return cls(
            dl_dst=_read_mac(buf, offset),
            dl_src=_read_mac(buf, offset + 6),
            dl_type=buf.read_u16(offset + 12),
        )

    def describe(self) -> str:
        return "eth(dst=%s,src=%s,type=%s)" % (
            field_repr(self.dl_dst), field_repr(self.dl_src), field_repr(self.dl_type))


@dataclass
class VlanTag:
    """A single 802.1Q tag (TPID is written by the Ethernet builder)."""

    pcp: FieldValue = 0
    vid: FieldValue = 0
    inner_type: FieldValue = c.ETH_TYPE_IP

    LENGTH = 4

    def __post_init__(self) -> None:
        self.pcp = as_field(self.pcp, 8)
        self.vid = as_field(self.vid, 16)
        self.inner_type = as_field(self.inner_type, 16)

    def pack(self) -> SymBuffer:
        buf = SymBuffer()
        if isinstance(self.pcp, int) and isinstance(self.vid, int):
            tci = ((self.pcp & 0x07) << 13) | (self.vid & 0x0FFF)
            buf.write_u16(tci)
        else:
            from repro.symbex.expr import bv

            tci = (bv(self.pcp, 16) << 13) | (bv(self.vid, 16) & 0x0FFF)
            buf.write_u16(tci)
        buf.write_u16(self.inner_type)
        return buf

    @classmethod
    def unpack(cls, buf: SymBuffer, offset: int) -> "VlanTag":
        if len(buf) - offset < cls.LENGTH:
            raise PacketParseError("frame too short for a VLAN tag")
        tci = buf.read_u16(offset)
        if isinstance(tci, int):
            pcp = (tci >> 13) & 0x07
            vid = tci & 0x0FFF
        else:
            pcp = (tci >> 13) & 0x07
            vid = tci & 0x0FFF
        return cls(pcp=pcp, vid=vid, inner_type=buf.read_u16(offset + 2))

    def describe(self) -> str:
        return "vlan(vid=%s,pcp=%s)" % (field_repr(self.vid), field_repr(self.pcp))


@dataclass
class ArpHeader:
    """An ARP request/reply for IPv4 over Ethernet."""

    opcode: FieldValue = 1
    sha: FieldValue = 0
    spa: FieldValue = 0
    tha: FieldValue = 0
    tpa: FieldValue = 0

    LENGTH = 28

    def __post_init__(self) -> None:
        self.opcode = as_field(self.opcode, 16)
        self.sha = as_field(self.sha, 48)
        self.spa = as_field(self.spa, 32)
        self.tha = as_field(self.tha, 48)
        self.tpa = as_field(self.tpa, 32)

    def pack(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(1)                # hardware type: Ethernet
        buf.write_u16(c.ETH_TYPE_IP)    # protocol type: IPv4
        buf.write_u8(6)
        buf.write_u8(4)
        buf.write_u16(self.opcode)
        _write_mac(buf, self.sha)
        buf.write_u32(self.spa)
        _write_mac(buf, self.tha)
        buf.write_u32(self.tpa)
        return buf

    @classmethod
    def unpack(cls, buf: SymBuffer, offset: int) -> "ArpHeader":
        if len(buf) - offset < cls.LENGTH:
            raise PacketParseError("frame too short for an ARP header")
        return cls(
            opcode=buf.read_u16(offset + 6),
            sha=_read_mac(buf, offset + 8),
            spa=buf.read_u32(offset + 14),
            tha=_read_mac(buf, offset + 18),
            tpa=buf.read_u32(offset + 24),
        )

    def describe(self) -> str:
        return "arp(op=%s,spa=%s,tpa=%s)" % (
            field_repr(self.opcode), field_repr(self.spa), field_repr(self.tpa))


@dataclass
class Ipv4Header:
    """A 20-byte (no options) IPv4 header."""

    tos: FieldValue = 0
    total_length: FieldValue = 0
    ttl: FieldValue = 64
    protocol: FieldValue = c.IPPROTO_TCP
    src: FieldValue = 0
    dst: FieldValue = 0

    LENGTH = 20

    def __post_init__(self) -> None:
        self.tos = as_field(self.tos, 8)
        self.total_length = as_field(self.total_length, 16)
        self.ttl = as_field(self.ttl, 8)
        self.protocol = as_field(self.protocol, 8)
        self.src = as_field(self.src, 32)
        self.dst = as_field(self.dst, 32)

    def pack(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u8(0x45)              # version 4, IHL 5
        buf.write_u8(self.tos)
        buf.write_u16(self.total_length)
        buf.write_u16(0)                # identification
        buf.write_u16(0)                # flags / fragment offset
        buf.write_u8(self.ttl)
        buf.write_u8(self.protocol)
        buf.write_u16(0)                # checksum modelled as zero
        buf.write_u32(self.src)
        buf.write_u32(self.dst)
        return buf

    @classmethod
    def unpack(cls, buf: SymBuffer, offset: int) -> "Ipv4Header":
        if len(buf) - offset < cls.LENGTH:
            raise PacketParseError("frame too short for an IPv4 header")
        return cls(
            tos=buf.read_u8(offset + 1),
            total_length=buf.read_u16(offset + 2),
            ttl=buf.read_u8(offset + 8),
            protocol=buf.read_u8(offset + 9),
            src=buf.read_u32(offset + 12),
            dst=buf.read_u32(offset + 16),
        )

    def describe(self) -> str:
        return "ipv4(src=%s,dst=%s,proto=%s,tos=%s)" % (
            field_repr(self.src), field_repr(self.dst),
            field_repr(self.protocol), field_repr(self.tos))


@dataclass
class IcmpHeader:
    """An 8-byte ICMP header (echo style)."""

    icmp_type: FieldValue = 8
    code: FieldValue = 0

    LENGTH = 8

    def __post_init__(self) -> None:
        self.icmp_type = as_field(self.icmp_type, 8)
        self.code = as_field(self.code, 8)

    def pack(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u8(self.icmp_type)
        buf.write_u8(self.code)
        buf.write_u16(0)  # checksum modelled as zero
        buf.write_u32(0)  # rest of header
        return buf

    @classmethod
    def unpack(cls, buf: SymBuffer, offset: int) -> "IcmpHeader":
        if len(buf) - offset < cls.LENGTH:
            raise PacketParseError("frame too short for an ICMP header")
        return cls(icmp_type=buf.read_u8(offset), code=buf.read_u8(offset + 1))

    def describe(self) -> str:
        return "icmp(type=%s,code=%s)" % (field_repr(self.icmp_type), field_repr(self.code))


@dataclass
class TcpHeader:
    """A 20-byte (no options) TCP header."""

    src_port: FieldValue = 0
    dst_port: FieldValue = 0
    seq: FieldValue = 0
    ack: FieldValue = 0
    flags: FieldValue = 0x02  # SYN
    window: FieldValue = 0xFFFF

    LENGTH = 20

    def __post_init__(self) -> None:
        self.src_port = as_field(self.src_port, 16)
        self.dst_port = as_field(self.dst_port, 16)
        self.seq = as_field(self.seq, 32)
        self.ack = as_field(self.ack, 32)
        self.flags = as_field(self.flags, 8)
        self.window = as_field(self.window, 16)

    def pack(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(self.src_port)
        buf.write_u16(self.dst_port)
        buf.write_u32(self.seq)
        buf.write_u32(self.ack)
        buf.write_u8(0x50)              # data offset 5 words
        buf.write_u8(self.flags)
        buf.write_u16(self.window)
        buf.write_u16(0)                # checksum modelled as zero
        buf.write_u16(0)                # urgent pointer
        return buf

    @classmethod
    def unpack(cls, buf: SymBuffer, offset: int) -> "TcpHeader":
        if len(buf) - offset < cls.LENGTH:
            raise PacketParseError("frame too short for a TCP header")
        return cls(
            src_port=buf.read_u16(offset),
            dst_port=buf.read_u16(offset + 2),
            seq=buf.read_u32(offset + 4),
            ack=buf.read_u32(offset + 8),
            flags=buf.read_u8(offset + 13),
            window=buf.read_u16(offset + 14),
        )

    def describe(self) -> str:
        return "tcp(src=%s,dst=%s)" % (field_repr(self.src_port), field_repr(self.dst_port))


@dataclass
class UdpHeader:
    """An 8-byte UDP header."""

    src_port: FieldValue = 0
    dst_port: FieldValue = 0
    length: FieldValue = 8

    LENGTH = 8

    def __post_init__(self) -> None:
        self.src_port = as_field(self.src_port, 16)
        self.dst_port = as_field(self.dst_port, 16)
        self.length = as_field(self.length, 16)

    def pack(self) -> SymBuffer:
        buf = SymBuffer()
        buf.write_u16(self.src_port)
        buf.write_u16(self.dst_port)
        buf.write_u16(self.length)
        buf.write_u16(0)  # checksum modelled as zero
        return buf

    @classmethod
    def unpack(cls, buf: SymBuffer, offset: int) -> "UdpHeader":
        if len(buf) - offset < cls.LENGTH:
            raise PacketParseError("frame too short for a UDP header")
        return cls(
            src_port=buf.read_u16(offset),
            dst_port=buf.read_u16(offset + 2),
            length=buf.read_u16(offset + 4),
        )

    def describe(self) -> str:
        return "udp(src=%s,dst=%s)" % (field_repr(self.src_port), field_repr(self.dst_port))
