"""Static analysis over agent modules and the repro stack itself.

Three passes, all AST-level and solver-free:

* **Decision maps** (:mod:`repro.analysis.decision_map`) — extract every
  branch site, message-type dispatch arm and compared constant from agent
  handler code.  The branch-site set is the *static denominator* behind
  ``CoverageTracker``'s ``coverage_fraction``, uncovered sites become explicit
  targets for the coverage-guided strategy and the hybrid hunt, and mined
  constants seed the differential fuzzer's interesting-value pool.
* **Symbex-compatibility lint** (:mod:`repro.analysis.symbex_lint`) — flag
  constructs the symbolic engine cannot model (time/random/os calls, I/O,
  iteration over unordered sets, unsupported builtins in branch conditions).
  Runs automatically at ``@register_agent`` time; ``strict=True`` rejects.
* **Concurrency lint** (:mod:`repro.analysis.concurrency_lint`) — in classes
  that own a ``threading.Lock``/``RLock``, flag shared-state writes in public
  methods that are not inside a ``with self.<lock>:`` block (the invariant
  hand-maintained by the campaign caches, the triage index and the
  incremental SAT engine).

All passes surface through ``soft lint`` (:func:`repro.analysis.lint.run_lint`)
and the CI lint job.  Findings are silenced per line with::

    # soft-lint: disable=<rule> -- <reason>

on the offending line or the line above; the reason is mandatory.
"""

from __future__ import annotations

from repro.analysis.decision_map import (
    BranchSite,
    DecisionMap,
    DispatchArm,
    branch_sites_for_file,
    build_decision_map,
    decision_map_for_agent,
    mine_constants_from,
    module_files,
)
from repro.analysis.findings import Finding, LintReport
from repro.analysis.lint import (
    RULE_NAMES,
    lint_class,
    lint_source,
    run_lint,
)

__all__ = [
    "BranchSite",
    "DecisionMap",
    "DispatchArm",
    "Finding",
    "LintReport",
    "RULE_NAMES",
    "branch_sites_for_file",
    "build_decision_map",
    "decision_map_for_agent",
    "lint_class",
    "lint_source",
    "mine_constants_from",
    "module_files",
    "run_lint",
]
