"""Concurrency lint: unlocked writes to shared state in lock-owning classes.

The campaign caches (:mod:`repro.core.campaign`), the triage index
(:mod:`repro.witness`), the incremental SAT engine
(:mod:`repro.symbex.incremental`) and the path budget all follow the same
hand-maintained invariant: the class owns a ``threading.Lock``/``RLock`` and
every mutation of shared ``self`` state from a public method happens inside
``with self._lock:``.  Their instances are shared across worker-pool
callables, so one forgotten ``with`` block is a data race that only shows up
as a corrupted cache under parallel campaigns.

Two checks:

* **Lock-owning classes** — any class that assigns a ``Lock``/``RLock`` to a
  ``self`` attribute: every mutation of a ``self``-rooted attribute in a
  *public* method (not ``__init__``, not underscore-prefixed — private
  helpers are assumed to run under the caller's lock) must be lexically
  inside a ``with self.<lock>:`` block.
* **Thread-safety claims** — a class with *no* lock whose docstring claims
  thread-safety: every mutation in every method is flagged, so the claim has
  to be justified per line (see ``InternTable`` for the GIL-atomicity
  argument).
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set, Tuple

__all__ = ["MUTATING_METHODS", "check_tree"]

#: Method names whose call on a ``self`` attribute mutates it in place.
MUTATING_METHODS = frozenset({
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "remove", "discard", "extend", "insert", "appendleft", "popleft",
    "write",
})

_THREAD_SAFE_CLAIM = re.compile(r"thread[- ]saf", re.IGNORECASE)


def _is_lock_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in ("Lock", "RLock")
    if isinstance(func, ast.Name):
        return func.id in ("Lock", "RLock")
    return False


def _self_attr_name(node: ast.expr) -> Optional[str]:
    """``self.X`` -> ``"X"`` (top-level attribute only), else ``None``."""

    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _rooted_at_self(node: ast.expr) -> bool:
    """True for ``self.a``, ``self.a.b``, ``self.a[k]`` and deeper chains."""

    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _lock_attrs(class_node: ast.ClassDef) -> Set[str]:
    locks: Set[str] = set()
    for node in ast.walk(class_node):
        if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
            for target in node.targets:
                name = _self_attr_name(target)
                if name is not None:
                    locks.add(name)
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
                and _is_lock_ctor(node.value)):
            name = _self_attr_name(node.target)
            if name is not None:
                locks.add(name)
    return locks


def _with_holds_lock(node: ast.With, lock_attrs: Set[str]) -> bool:
    for item in node.items:
        expr = item.context_expr
        name = _self_attr_name(expr)
        if name is not None and name in lock_attrs:
            return True
    return False


def _mutation_at(node: ast.stmt) -> Optional[Tuple[int, str]]:
    """(line, description) when *node* mutates ``self``-rooted state."""

    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                continue
            if _rooted_at_self(target):
                return (node.lineno, "assignment to shared attribute")
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if _rooted_at_self(target):
                return (node.lineno, "deletion of shared attribute")
    elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
        func = node.value.func
        # self.X.add(...) mutates container X; a bare self.add(...) is the
        # class's own method (which takes the lock itself) — not a mutation.
        if (isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS
                and not isinstance(func.value, ast.Name)
                and _rooted_at_self(func.value)):
            return (node.lineno, "in-place %s() on shared attribute" % func.attr)
    return None


def _scan_body(body: List[ast.stmt], lock_attrs: Set[str], locked: bool,
               findings: List[Tuple[int, str]], context: str) -> None:
    for node in body:
        if not locked:
            mutation = _mutation_at(node)
            if mutation is not None:
                line, what = mutation
                findings.append((line, "%s outside a lock in %s"
                                 % (what, context)))
        if isinstance(node, ast.With):
            now_locked = locked or _with_holds_lock(node, lock_attrs)
            _scan_body(node.body, lock_attrs, now_locked, findings, context)
        elif isinstance(node, (ast.If, ast.While, ast.For)):
            _scan_body(node.body, lock_attrs, locked, findings, context)
            _scan_body(node.orelse, lock_attrs, locked, findings, context)
        elif isinstance(node, ast.Try):
            _scan_body(node.body, lock_attrs, locked, findings, context)
            for handler in node.handlers:
                _scan_body(handler.body, lock_attrs, locked, findings, context)
            _scan_body(node.orelse, lock_attrs, locked, findings, context)
            _scan_body(node.finalbody, lock_attrs, locked, findings, context)
        # Nested function/class definitions are deliberately not descended
        # into: they run in their own call context, not this method's.


def _check_class(class_node: ast.ClassDef) -> List[Tuple[int, str]]:
    findings: List[Tuple[int, str]] = []
    lock_attrs = _lock_attrs(class_node)
    docstring = ast.get_docstring(class_node) or ""
    claims_safety = bool(_THREAD_SAFE_CLAIM.search(docstring))

    for node in class_node.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name == "__init__":
            continue
        if lock_attrs:
            # Private helpers are assumed to run under the caller's lock.
            if node.name.startswith("_") and not node.name.startswith("__"):
                continue
            context = ("public method %s.%s of lock-owning class"
                       % (class_node.name, node.name))
            _scan_body(node.body, lock_attrs, False, findings, context)
        elif claims_safety:
            context = ("method %s.%s of class claiming thread-safety "
                       "without a lock" % (class_node.name, node.name))
            _scan_body(node.body, set(), False, findings, context)
    return findings


def check_tree(tree: ast.AST) -> List[Tuple[int, str]]:
    """All concurrency findings of a parsed source, as (line, message)."""

    findings: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            findings.extend(_check_class(node))
    return sorted(set(findings))
