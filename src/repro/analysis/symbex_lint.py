"""Symbex-compatibility lint: constructs the symbolic engine cannot model.

The engine replays agent handlers along recorded decision schedules
(:mod:`repro.symbex.engine`) and the concolic executor re-derives path
conditions from concrete runs (:mod:`repro.symbex.concolic`).  Both assume
the program under test is a *deterministic pure function of its inputs*:

* calls into ``time``/``random``/``os``/... make replays diverge from their
  schedule (surfaced loudly as ``PathDivergedError``, but only after budget
  was burned);
* I/O escapes the recorded trace entirely;
* iterating an unordered ``set`` makes branch order depend on hash
  randomization;
* builtins like ``hash``/``id`` in a branch condition fold a process-random
  value into the path condition.

This lint rejects those shapes *statically*, at ``@register_agent`` time,
instead of at replay-mismatch time deep inside a campaign.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

__all__ = [
    "IO_CALLS",
    "NONDETERMINISTIC_MODULES",
    "UNSUPPORTED_BRANCH_BUILTINS",
    "check_tree",
]

#: Modules whose calls are nondeterministic or environment-dependent.
NONDETERMINISTIC_MODULES = frozenset({
    "time", "random", "os", "datetime", "uuid", "secrets", "socket",
    "subprocess", "threading",
})

#: Builtins that perform I/O; handlers must be pure over their inputs.
IO_CALLS = frozenset({"open", "input", "print"})

#: Builtins whose result the engine cannot model inside a branch condition.
UNSUPPORTED_BRANCH_BUILTINS = frozenset({
    "hash", "id", "repr", "format", "vars", "globals", "locals",
})


def _branch_condition_findings(test: ast.expr) -> List[Tuple[int, str]]:
    findings: List[Tuple[int, str]] = []
    for sub in ast.walk(test):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id in UNSUPPORTED_BRANCH_BUILTINS):
            findings.append((
                sub.lineno,
                "branch condition calls %s(); the symbolic engine cannot "
                "model its result" % sub.func.id))
    return findings


def _call_findings(node: ast.Call) -> List[Tuple[int, str]]:
    func = node.func
    if (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
            and func.value.id in NONDETERMINISTIC_MODULES):
        return [(node.lineno,
                 "call to %s.%s() is nondeterministic under symbolic "
                 "execution; replays would diverge from their decision "
                 "schedule" % (func.value.id, func.attr))]
    if isinstance(func, ast.Name) and func.id in IO_CALLS:
        return [(node.lineno,
                 "%s() performs I/O; agent handlers must be pure functions "
                 "of their inputs" % func.id)]
    return []


def _iteration_findings(iter_node: ast.expr) -> List[Tuple[int, str]]:
    unordered = False
    if (isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")):
        unordered = True
    elif isinstance(iter_node, (ast.Set, ast.SetComp)):
        unordered = True
    if not unordered:
        return []
    return [(iter_node.lineno,
             "iteration over an unordered set; branch order would depend on "
             "hash randomization (use a sorted() or list iteration)")]


def check_tree(tree: ast.AST) -> List[Tuple[int, str]]:
    """All symbex-compatibility findings of a parsed source, as (line, message)."""

    findings: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            findings.extend(_branch_condition_findings(node.test))
        if isinstance(node, ast.Call):
            findings.extend(_call_findings(node))
        if isinstance(node, ast.For):
            findings.extend(_iteration_findings(node.iter))
        if isinstance(node, ast.comprehension):
            findings.extend(_iteration_findings(node.iter))
    return sorted(set(findings))
