"""Decision maps: static branch, dispatch and constant extraction.

A *decision map* is the static complement of the dynamic
:class:`~repro.coverage.tracker.CoverageTracker`: it enumerates every branch
site an agent's handler code *could* take before a single path is explored.
Three artifacts come out of one AST walk per module:

* **Branch sites** — the lines carrying ``if``/``while``/ternary/``assert``
  conditions, comprehension filters and short-circuit operators.  The
  extraction is shared with the coverage tracker (its ``branch_lines`` is a
  thin wrapper over :func:`branch_sites_for_file`), so the static denominator
  of ``coverage_fraction`` and the tracker's dynamic branch points are drawn
  from the same definition and the dynamic set is a subset of the static one
  by construction.
* **Dispatch arms** — comparisons against ``OFPT_*`` message-type constants,
  i.e. the agent's control-message dispatch table.
* **Mined constants** — integer literals and named protocol constants that
  appear in comparisons.  A constant compared in a branch is exactly the
  value a random fuzzer is astronomically unlikely to draw (a 16-bit match
  is a 2^-16 lottery ticket), so the miner's output seeds the differential
  fuzzer's interesting-value pool.
"""

from __future__ import annotations

import ast
import importlib
import importlib.util
import inspect
import pkgutil
import textwrap
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "BranchSite",
    "DispatchArm",
    "DecisionMap",
    "branch_sites_for_file",
    "branch_sites_in_tree",
    "build_decision_map",
    "decision_map_for_agent",
    "mine_constants_from",
    "module_files",
]

#: Module whose upper-case integer attributes name protocol constants.
CONSTANTS_MODULE = "repro.openflow.constants"

_named_constants_cache: Optional[Dict[str, int]] = None


def _named_constants() -> Dict[str, int]:
    """Name -> value for every integer constant of :data:`CONSTANTS_MODULE`."""

    global _named_constants_cache
    if _named_constants_cache is None:
        try:
            module = importlib.import_module(CONSTANTS_MODULE)
        except ImportError:
            _named_constants_cache = {}
        else:
            _named_constants_cache = {
                name: value for name, value in vars(module).items()
                if name.isupper() and isinstance(value, int)
                and not isinstance(value, bool)
            }
    return _named_constants_cache


@dataclass(frozen=True)
class BranchSite:
    """One statically known branch point: a (file, line) plus its shape."""

    path: str
    line: int
    #: "if" | "while" | "ifexp" | "assert" | "comprehension" | "boolop"
    kind: str
    #: Source text of the condition (best effort; "" when unavailable).
    condition: str = ""

    def key(self) -> Tuple[str, int]:
        return (self.path, self.line)

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "kind": self.kind,
                "condition": self.condition}


@dataclass(frozen=True)
class DispatchArm:
    """One message-type dispatch comparison (``msg_type == OFPT_...``)."""

    path: str
    line: int
    constant: str
    value: int

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line,
                "constant": self.constant, "value": self.value}


@dataclass
class DecisionMap:
    """Everything statically known about the decisions of a set of modules."""

    packages: Tuple[str, ...] = ()
    sites: List[BranchSite] = field(default_factory=list)
    dispatch_arms: List[DispatchArm] = field(default_factory=list)
    #: Mined constant value -> sorted labels (constant names or "literal").
    constants: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def site_count(self) -> int:
        """Distinct (file, line) branch sites — the static coverage denominator."""

        return len(self.site_keys())

    def site_keys(self) -> Set[Tuple[str, int]]:
        return {site.key() for site in self.sites}

    def files(self) -> List[str]:
        return sorted({site.path for site in self.sites})

    def sites_for_file(self, path: str) -> Set[int]:
        return {site.line for site in self.sites if site.path == path}

    def interesting_values(self) -> List[int]:
        """Sorted mined constants, ready for a fuzzer's value pool."""

        return sorted(self.constants)

    def uncovered(self, executed: Dict[str, Set[int]]) -> Set[Tuple[str, int]]:
        """Static sites whose line never appears in *executed* (path -> lines)."""

        return {(path, line) for path, line in self.site_keys()
                if line not in executed.get(path, set())}

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": "soft/decision-map/v1",
            "packages": list(self.packages),
            "site_count": self.site_count,
            "sites": [site.to_dict() for site in self.sites],
            "dispatch_arms": [arm.to_dict() for arm in self.dispatch_arms],
            "constants": {str(value): list(labels)
                          for value, labels in sorted(self.constants.items())},
        }


def _unparse(node: ast.AST) -> str:
    unparse = getattr(ast, "unparse", None)
    if unparse is None:  # pragma: no cover - Python < 3.9
        return ""
    return str(unparse(node))


def branch_sites_in_tree(tree: ast.AST, path: str) -> List[BranchSite]:
    """Every branch site of a parsed module.

    The node kinds here MUST stay in lockstep with what the coverage
    tracker's arc accounting treats as a branch line — both sides now call
    this one function, which is the point.
    """

    sites: List[BranchSite] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.If):
            sites.append(BranchSite(path, node.lineno, "if", _unparse(node.test)))
        elif isinstance(node, ast.While):
            sites.append(BranchSite(path, node.lineno, "while", _unparse(node.test)))
        elif isinstance(node, ast.IfExp):
            sites.append(BranchSite(path, node.lineno, "ifexp", _unparse(node.test)))
        elif isinstance(node, ast.Assert):
            sites.append(BranchSite(path, node.lineno, "assert", _unparse(node.test)))
        elif isinstance(node, ast.comprehension):
            for condition in node.ifs:
                sites.append(BranchSite(path, condition.lineno, "comprehension",
                                        _unparse(condition)))
        elif isinstance(node, ast.BoolOp):
            sites.append(BranchSite(path, node.lineno, "boolop", _unparse(node)))
    return sites


def branch_sites_for_file(filename: str) -> List[BranchSite]:
    """Parse *filename* and extract its branch sites."""

    with open(filename, "r", encoding="utf-8") as handle:
        source = handle.read()
    return branch_sites_in_tree(ast.parse(source, filename=filename), filename)


def _constant_label(node: ast.expr) -> Optional[str]:
    """The constant name an expression references, if it looks like one."""

    if isinstance(node, ast.Attribute) and node.attr.isupper():
        return node.attr
    if isinstance(node, ast.Name) and node.id.isupper():
        return node.id
    return None


def _compares_in_tree(tree: ast.AST, path: str,
                      ) -> Tuple[List[DispatchArm], Dict[int, Set[str]]]:
    """Dispatch arms plus mined constants from every comparison in *tree*."""

    named = _named_constants()
    arms: List[DispatchArm] = []
    constants: Dict[int, Set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        for operand in [node.left] + list(node.comparators):
            if (isinstance(operand, ast.Constant)
                    and isinstance(operand.value, int)
                    and not isinstance(operand.value, bool)):
                constants.setdefault(operand.value, set()).add("literal")
                continue
            label = _constant_label(operand)
            if label is not None and label in named:
                value = named[label]
                constants.setdefault(value, set()).add(label)
                if label.startswith("OFPT_"):
                    arms.append(DispatchArm(path, node.lineno, label, value))
    return arms, constants


def module_files(package_names: Iterable[str]) -> Dict[str, str]:
    """Module name -> source file for every module under the given packages.

    Resolution is spec-based (no module is imported), so the map can be
    built for packages whose import would have side effects.
    """

    files: Dict[str, str] = {}
    for package_name in package_names:
        try:
            spec = importlib.util.find_spec(package_name)
        except (ImportError, ValueError):
            continue
        if spec is None:
            continue
        if spec.origin and spec.origin.endswith(".py"):
            files[package_name] = spec.origin
        search = spec.submodule_search_locations
        if not search:
            continue
        for module_info in pkgutil.walk_packages(list(search),
                                                 prefix=package_name + "."):
            try:
                sub = importlib.util.find_spec(module_info.name)
            except (ImportError, ValueError):
                continue
            if sub is not None and sub.origin and sub.origin.endswith(".py"):
                files[module_info.name] = sub.origin
    return files


def build_decision_map(package_names: Sequence[str]) -> DecisionMap:
    """Extract one :class:`DecisionMap` over every module of *package_names*.

    Packages that do not resolve are skipped (an unregistered vendor agent
    without a dedicated package simply contributes nothing).
    """

    decision_map = DecisionMap(packages=tuple(package_names))
    merged: Dict[int, Set[str]] = {}
    for path in sorted(set(module_files(package_names).values())):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        decision_map.sites.extend(branch_sites_in_tree(tree, path))
        arms, constants = _compares_in_tree(tree, path)
        decision_map.dispatch_arms.extend(arms)
        for value, labels in constants.items():
            merged.setdefault(value, set()).update(labels)
    decision_map.constants = {value: tuple(sorted(labels))
                              for value, labels in merged.items()}
    return decision_map


def decision_map_for_agent(agent_name: str) -> DecisionMap:
    """The decision map of one registered agent: common base + its package."""

    return build_decision_map(["repro.agents.common",
                               "repro.agents.%s" % agent_name])


def mine_constants_from(obj: object) -> List[int]:
    """Mine compared constants from a class or function's own source.

    Works on objects outside the agent packages (e.g. a planted in-test
    agent): the PR-6 planted ``OFPP_CONTROLLER`` comparison is exactly the
    kind of rare constant this surfaces for a fuzzer.  Returns ``[]`` when
    the source is unavailable (interactively defined objects).
    """

    try:
        source = textwrap.dedent(inspect.getsource(obj))  # type: ignore[arg-type]
    except (OSError, TypeError):
        return []
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    _arms, constants = _compares_in_tree(tree, "<source>")
    return sorted(constants)
