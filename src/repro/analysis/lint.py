"""The ``soft lint`` driver: rule registry, file walking, class linting.

Three rules:

* ``broad-except`` — ``except Exception:`` / bare ``except:`` hides
  ``KeyboardInterrupt`` subclass-adjacent bugs and typo'd attribute errors;
  every catch in ``src/`` must name the exception types it expects (or
  carry a suppression with a reason, for the genuine catch-alls around
  arbitrary agent code).
* ``symbex-compat`` — agent modules only (paths under ``repro/agents``):
  see :mod:`repro.analysis.symbex_lint`.
* ``unlocked-shared-state`` — see :mod:`repro.analysis.concurrency_lint`.
"""

from __future__ import annotations

import ast
import inspect
import os
import textwrap
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis import concurrency_lint, symbex_lint
from repro.analysis.findings import Finding, LintReport, apply_suppressions

__all__ = ["RULE_NAMES", "lint_class", "lint_source", "run_lint"]

RULE_NAMES: Tuple[str, ...] = (
    "broad-except", "symbex-compat", "unlocked-shared-state")

_AGENTS_FRAGMENT = os.path.join("repro", "agents")


def _broad_except_findings(tree: ast.AST) -> List[Tuple[int, str]]:
    findings: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append((node.lineno,
                             "bare except: swallows KeyboardInterrupt and "
                             "SystemExit; name the expected exception types"))
            continue
        names: List[ast.expr] = []
        if isinstance(node.type, ast.Tuple):
            names.extend(node.type.elts)
        else:
            names.append(node.type)
        for name_node in names:
            label: Optional[str] = None
            if isinstance(name_node, ast.Name):
                label = name_node.id
            elif isinstance(name_node, ast.Attribute):
                label = name_node.attr
            if label in ("Exception", "BaseException"):
                findings.append((node.lineno,
                                 "except %s: is too broad; name the expected "
                                 "exception types" % label))
                break
    return findings


def _rules_for_path(path: str, rules: Sequence[str]) -> List[str]:
    normalized = path.replace("\\", "/")
    agents_fragment = _AGENTS_FRAGMENT.replace("\\", "/")
    selected = []
    for rule in rules:
        if rule == "symbex-compat" and agents_fragment not in normalized:
            continue
        selected.append(rule)
    return selected


def lint_source(source: str, path: str,
                rules: Optional[Sequence[str]] = None,
                line_offset: int = 0) -> List[Finding]:
    """Lint one source string; suppression comments in it are honoured.

    *line_offset* is added to every reported line (used by
    :func:`lint_class` so findings land on real file lines).
    """

    selected = list(rules) if rules is not None else list(RULE_NAMES)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = line_offset + (exc.lineno or 1)
        return [Finding("parse-error", path, line,
                        "source does not parse: %s" % exc.msg)]
    findings: List[Finding] = []
    for rule in selected:
        if rule == "broad-except":
            raw = _broad_except_findings(tree)
        elif rule == "symbex-compat":
            raw = symbex_lint.check_tree(tree)
        elif rule == "unlocked-shared-state":
            raw = concurrency_lint.check_tree(tree)
        else:
            raise ValueError("unknown lint rule: %r (known: %s)"
                             % (rule, ", ".join(RULE_NAMES)))
        findings.extend(Finding(rule, path, line + line_offset, message)
                        for line, message in raw)
    findings.sort(key=lambda finding: (finding.line, finding.rule))
    return apply_suppressions(findings, source, line_offset=line_offset)


def _python_files(root: str) -> List[str]:
    if os.path.isfile(root):
        return [root]
    collected: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [name for name in dirnames if name != "__pycache__"]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                collected.append(os.path.join(dirpath, filename))
    return collected


def run_lint(paths: Iterable[str],
             rules: Optional[Sequence[str]] = None) -> LintReport:
    """Lint every ``.py`` file under *paths* and return one report.

    ``symbex-compat`` only applies to files under ``repro/agents`` —
    nondeterminism is fine in the campaign driver; it is the *agents* the
    symbolic engine has to model.
    """

    selected = tuple(rules) if rules is not None else RULE_NAMES
    report = LintReport(rules=selected)
    for root in paths:
        for path in _python_files(root):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            applicable = _rules_for_path(path, selected)
            report.files_scanned += 1
            if not applicable:
                continue
            report.findings.extend(lint_source(source, path, rules=applicable))
    report.findings.sort(
        key=lambda finding: (finding.path, finding.line, finding.rule))
    return report


def lint_class(cls: type,
               rules: Sequence[str] = ("symbex-compat",)) -> List[Finding]:
    """Lint one class from its live source (used at agent registration).

    Returns ``[]`` when the source is unavailable (e.g. classes defined in
    a REPL) — registration-time linting is best effort by design.
    """

    try:
        source_lines, start = inspect.getsourcelines(cls)
        path = inspect.getsourcefile(cls) or "<source>"
    except (OSError, TypeError):
        return []
    source = textwrap.dedent("".join(source_lines))
    try:
        return lint_source(source, path, rules=rules, line_offset=start - 1)
    except SyntaxError:  # pragma: no cover - dedent produced invalid source
        return []
