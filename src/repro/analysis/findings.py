"""Lint findings, reports and the suppression-comment protocol.

A finding is silenced per line with::

    # soft-lint: disable=<rule>[,<rule>...] -- <reason>

on the offending line or the line directly above.  ``disable=all`` covers
every rule.  The reason after ``--`` is mandatory: a suppression without one
does not suppress (the point is that every silenced finding carries its
justification in the source, next to the code it excuses).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

__all__ = ["Finding", "LintReport", "suppressions_in_source"]

_SUPPRESS_RE = re.compile(
    r"#\s*soft-lint:\s*disable=([A-Za-z0-9_,-]+)(?:\s*--\s*(\S.*))?")


@dataclass(frozen=True)
class Finding:
    """One lint finding, pinned to a (rule, file, line)."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    suppress_reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules: Tuple[str, ...] = ()

    def unsuppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed()

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": "soft/lint-report/v1",
            "rules": list(self.rules),
            "files_scanned": self.files_scanned,
            "finding_count": len(self.findings),
            "unsuppressed_count": len(self.unsuppressed()),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def describe(self) -> str:
        lines = ["soft lint: %d file(s), rules: %s"
                 % (self.files_scanned, ", ".join(self.rules) or "-")]
        active = self.unsuppressed()
        if not active:
            lines.append("clean: no unsuppressed findings (%d suppressed)"
                         % (len(self.findings)))
            return "\n".join(lines)
        header = "%-24s %-48s %s" % ("rule", "location", "message")
        lines.append(header)
        lines.append("-" * len(header))
        for finding in active:
            location = "%s:%d" % (finding.path, finding.line)
            lines.append("%-24s %-48s %s"
                         % (finding.rule, location, finding.message))
        lines.append("%d unsuppressed finding(s)" % len(active))
        return "\n".join(lines)


def suppressions_in_source(source: str) -> Dict[int, Tuple[Set[str], str]]:
    """Line -> (rules, reason) for every suppression comment in *source*.

    Comments whose reason is missing are dropped — an unexplained
    suppression is not a suppression.
    """

    suppressions: Dict[int, Tuple[Set[str], str]] = {}
    for index, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        reason = (match.group(2) or "").strip()
        if not reason:
            continue
        rules = {rule.strip() for rule in match.group(1).split(",")
                 if rule.strip()}
        if rules:
            suppressions[index] = (rules, reason)
    return suppressions


def apply_suppressions(findings: List[Finding], source: str,
                       line_offset: int = 0) -> List[Finding]:
    """Mark findings covered by a suppression comment on their line or above.

    *line_offset* shifts finding lines back into *source* coordinates when
    the findings were produced from a dedented extract (``lint_class``).
    """

    suppressions = suppressions_in_source(source)
    if not suppressions:
        return findings
    out: List[Finding] = []
    for finding in findings:
        local_line = finding.line - line_offset
        covered = None
        for candidate in (local_line, local_line - 1):
            entry = suppressions.get(candidate)
            if entry is None:
                continue
            rules, reason = entry
            if "all" in rules or finding.rule in rules:
                covered = reason
                break
        if covered is None:
            out.append(finding)
        else:
            out.append(Finding(finding.rule, finding.path, finding.line,
                               finding.message, suppressed=True,
                               suppress_reason=covered))
    return out
